//! Grid sweeps: expand one TOML file into many [`SimConfig`] points, run
//! them on the [`SweepRunner`](crate::SweepRunner), and checkpoint
//! completed rows so an interrupted sweep resumes instead of restarting.
//!
//! # Grid file format
//!
//! A grid file is an ordinary [`SimConfig`] TOML document plus two extra
//! sections:
//!
//! ```toml
//! # Base configuration: any SimConfig key, same as `tenways --config`.
//! workload = "oltp"
//! scale = 4
//!
//! [sweep]              # optional sweep metadata
//! id = "oltp-scaling"  # default: the file stem
//! title = "OLTP scaling sweep"
//!
//! [grid]               # the cross product of these axes is the sweep
//! threads = [2, 4, 8, 16]
//! model = ["sc", "tso"]
//! "machine.dram_latency" = [100, 200]
//! ```
//!
//! Every `[grid]` key names a `SimConfig` field (dotted keys reach into
//! sections); each point overlays one value per axis onto the base config.
//! Axes expand in document order, first axis outermost. A file with no
//! `[grid]` section is a single-point sweep of the base config.
//!
//! # Checkpoint / resume
//!
//! While running, completed rows are periodically written to
//! `<out>/<id>.partial.json`. If that file exists when the sweep starts
//! (same id, same point count, same labels), its `ok` rows are reused and
//! only the remaining points run — so a sweep killed mid-run resumes
//! instead of restarting, and the final document is byte-identical to an
//! uninterrupted run. The checkpoint is removed once every row is `ok`.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tenways_sim::json::{Json, ToJson};
use tenways_waste::{Experiment, SimConfig};

use crate::cache::ResultCache;
use crate::serve::http_call;
use crate::sweep::{JobOutcome, SweepError, SweepJob, SweepOptions, SweepRunner};
use crate::{record_row, record_row_json, BENCH_ROWS_SCHEMA_VERSION};

/// A parsed sweep specification: base config plus grid axes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep identifier; names the output files.
    pub id: String,
    /// Human title for the results document.
    pub title: Option<String>,
    /// The base configuration every point starts from.
    pub base: SimConfig,
    /// Grid axes in document order: `(key, values)`.
    pub grid: Vec<(String, Vec<Json>)>,
}

/// One expanded grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in the expansion (stable across runs).
    pub index: usize,
    /// `key=value` pairs joined with `,`, or `"base"` for a gridless file.
    pub label: String,
    /// The axis assignments this point overlays onto the base.
    pub overlay: Vec<(String, Json)>,
    /// The fully resolved configuration.
    pub config: SimConfig,
}

impl SweepSpec {
    /// Parses a grid document from TOML text. `fallback_id` is used when
    /// the file has no `[sweep] id`.
    pub fn from_toml_str(text: &str, fallback_id: &str) -> Result<SweepSpec, String> {
        let doc = tenways_sim::toml::parse_toml(text).map_err(|e| e.to_string())?;
        SweepSpec::from_json(&doc, fallback_id)
    }

    /// Builds a spec from an already-parsed document tree.
    pub fn from_json(doc: &Json, fallback_id: &str) -> Result<SweepSpec, String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| format!("grid file must be a table, got {}", doc.type_name()))?;
        let mut id = fallback_id.to_string();
        let mut title = None;
        let mut grid = Vec::new();
        let mut base_pairs = Vec::new();
        for (key, value) in pairs {
            match key.as_str() {
                "sweep" => {
                    for (k, v) in value.as_object().ok_or("`[sweep]` must be a table")?.iter() {
                        match k.as_str() {
                            "id" => {
                                id = v.as_str().ok_or("`sweep.id` must be a string")?.to_string()
                            }
                            "title" => {
                                title = Some(
                                    v.as_str()
                                        .ok_or("`sweep.title` must be a string")?
                                        .to_string(),
                                )
                            }
                            other => return Err(format!("unknown `[sweep]` key `{other}`")),
                        }
                    }
                }
                "grid" => {
                    for (axis, values) in value.as_object().ok_or("`[grid]` must be a table")? {
                        let values = match values {
                            Json::Arr(items) => items.clone(),
                            // A scalar axis pins one value (a 1-wide axis).
                            other => vec![other.clone()],
                        };
                        if values
                            .iter()
                            .any(|v| matches!(v, Json::Arr(_) | Json::Obj(_)))
                        {
                            return Err(format!("grid axis `{axis}` must hold scalars"));
                        }
                        grid.push((axis.clone(), values));
                    }
                }
                _ => base_pairs.push((key.clone(), value.clone())),
            }
        }
        let mut base = SimConfig::default();
        base.apply_json(&Json::Obj(base_pairs))?;
        if id.is_empty() {
            return Err("sweep id must not be empty".to_string());
        }
        Ok(SweepSpec {
            id,
            title,
            base,
            grid,
        })
    }

    /// Loads a grid file; `.json` parses as JSON, everything else as TOML.
    /// The default sweep id is the file stem.
    pub fn load(path: &Path) -> Result<SweepSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("sweep");
        if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"))
        {
            let doc = Json::parse(&text).map_err(|e| e.to_string())?;
            SweepSpec::from_json(&doc, stem)
        } else {
            SweepSpec::from_toml_str(&text, stem)
        }
    }

    /// The document title used for the results file.
    pub fn resolved_title(&self) -> String {
        self.title
            .clone()
            .unwrap_or_else(|| format!("parameter sweep `{}`", self.id))
    }

    /// Expands the grid's cross product into configured points, first axis
    /// outermost. A mistyped or unknown axis value is an error here — a
    /// broken grid should stop the sweep before any cycles are spent.
    pub fn points(&self) -> Result<Vec<SweepPoint>, String> {
        let mut overlays: Vec<Vec<(String, Json)>> = vec![Vec::new()];
        for (key, values) in &self.grid {
            let mut next = Vec::with_capacity(overlays.len() * values.len());
            for overlay in &overlays {
                for value in values {
                    let mut o = overlay.clone();
                    o.push((key.clone(), value.clone()));
                    next.push(o);
                }
            }
            overlays = next;
        }
        overlays
            .into_iter()
            .enumerate()
            .map(|(index, overlay)| {
                let mut config = self.base.clone();
                for (key, value) in &overlay {
                    config
                        .apply_json(&nested_overlay(key, value.clone()))
                        .map_err(|e| format!("grid axis `{key}`: {e}"))?;
                }
                Ok(SweepPoint {
                    index,
                    label: point_label(&overlay),
                    overlay,
                    config,
                })
            })
            .collect()
    }
}

/// Wraps `value` into nested objects along a dotted `path`
/// (`"machine.dram_latency"` → `{"machine":{"dram_latency":value}}`).
fn nested_overlay(path: &str, value: Json) -> Json {
    let mut doc = value;
    for part in path.rsplit('.') {
        doc = Json::obj([(part, doc)]);
    }
    doc
}

fn scalar_text(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn point_label(overlay: &[(String, Json)]) -> String {
    if overlay.is_empty() {
        return "base".to_string();
    }
    overlay
        .iter()
        .map(|(k, v)| format!("{k}={}", scalar_text(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// How [`run_sweep`] executes and persists a sweep.
#[derive(Debug, Clone)]
pub struct SweepParams {
    /// Runner options (workers, retries, budget, cancellation).
    pub options: SweepOptions,
    /// Directory for the final and checkpoint documents.
    pub out_dir: PathBuf,
    /// Write the checkpoint after every this-many completed rows
    /// (0 disables checkpointing).
    pub checkpoint_every: usize,
    /// Reuse `ok` rows from an existing checkpoint instead of rerunning.
    pub resume: bool,
    /// Consult (and fill) the content-addressed [`ResultCache`] at this
    /// directory: points whose key is already cached become rows without
    /// simulating, and freshly simulated records are stored for the next
    /// overlapping grid. `None` (the default) leaves caching off.
    pub cache_dir: Option<PathBuf>,
    /// Emit per-row progress lines on stderr.
    pub verbose: bool,
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams {
            options: SweepOptions::default(),
            out_dir: crate::results_dir(),
            checkpoint_every: 1,
            resume: true,
            cache_dir: None,
            verbose: false,
        }
    }
}

/// What a finished [`run_sweep`] produced.
#[derive(Debug)]
pub struct SweepReport {
    /// Where the final document was written.
    pub path: PathBuf,
    /// The final document.
    pub doc: Json,
    /// Rows that completed (including reused checkpoint rows).
    pub ok: usize,
    /// Rows that ran and failed.
    pub failed: usize,
    /// Rows skipped by cancellation or a job cap.
    pub skipped: usize,
    /// How many `ok` rows came from the checkpoint instead of running.
    pub reused: usize,
    /// How many `ok` rows came from a result cache (local
    /// [`SweepParams::cache_dir`] hits, or server-side `cached` answers
    /// in [`run_sweep_server`]) instead of simulating.
    pub cached: usize,
}

impl SweepReport {
    /// Whether every row completed.
    pub fn all_ok(&self) -> bool {
        self.failed == 0 && self.skipped == 0
    }
}

/// Version of the checkpoint document layout.
const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// Runs a sweep fail-soft: every point gets a row with status
/// `ok`/`failed`/`skipped`, completed rows are checkpointed to
/// `<out>/<id>.partial.json` as the sweep progresses, and the final
/// `bench_rows.v1`-compatible document lands in `<out>/<id>.json`.
///
/// Returns `Err` only for infrastructure problems (unwritable output
/// directory, malformed grid); per-job failures are reported in the rows.
pub fn run_sweep(spec: &SweepSpec, params: &SweepParams) -> Result<SweepReport, String> {
    let points = spec.points()?;
    std::fs::create_dir_all(&params.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", params.out_dir.display()))?;
    let final_path = params.out_dir.join(format!("{}.json", spec.id));
    let partial_path = params.out_dir.join(format!("{}.partial.json", spec.id));

    // Reuse checkpointed rows where the checkpoint matches this sweep.
    let mut rows: Vec<Option<Json>> = vec![None; points.len()];
    let mut reused = 0usize;
    if params.resume && partial_path.exists() {
        match load_checkpoint(&partial_path, spec, &points) {
            Ok(restored) => {
                for (i, row) in restored {
                    if rows[i].is_none() {
                        rows[i] = Some(row);
                        reused += 1;
                    }
                }
                if params.verbose && reused > 0 {
                    eprintln!(
                        "[sweep {}] resuming: {} of {} rows restored from {}",
                        spec.id,
                        reused,
                        points.len(),
                        partial_path.display()
                    );
                }
            }
            Err(reason) => eprintln!(
                "[sweep {}] ignoring checkpoint {}: {reason}",
                spec.id,
                partial_path.display()
            ),
        }
    }

    // With a result cache configured, points whose content-address is
    // already stored become rows without simulating — overlapping grids
    // (or a grid warmed by `tenways serve`) only pay for the new keys.
    let cache = match &params.cache_dir {
        Some(dir) => Some(Mutex::new(ResultCache::open(dir, 64)?)),
        None => None,
    };
    let mut cached = 0usize;
    if let Some(cache) = &cache {
        let mut store = cache.lock().unwrap_or_else(|e| e.into_inner());
        for (i, point) in points.iter().enumerate() {
            if rows[i].is_some() {
                continue;
            }
            if let Some(record) = store.get(&point.config.cache_key()) {
                rows[i] = Some(cached_row(point, &record, "hit"));
                cached += 1;
                if params.verbose {
                    eprintln!("[sweep {}] cached {}", spec.id, point.label);
                }
            }
        }
        if cached > 0 && params.verbose {
            eprintln!(
                "[sweep {}] {cached} of {} rows served from the result cache",
                spec.id,
                points.len()
            );
        }
    }

    // Dispatch the points that still need to run. Each job carries its own
    // wall time (milliseconds) alongside the record so rows can report
    // simulation throughput; timing inside the closure excludes queueing.
    // Intra-run sharding (`[sched] mode = "parallel-epoch"`) multiplies
    // the sweep's across-run parallelism. An explicitly requested worker
    // count that oversubscribes the host is rejected (typed
    // `SchedConfigError::Oversubscribed`, surfaced as the sweep's
    // infrastructure error); the automatic default divides the host
    // budget by the widest point instead.
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_intra = points
        .iter()
        .map(|p| p.config.sched.intra_workers())
        .max()
        .unwrap_or(1);
    let mut options = params.options.clone();
    match options.workers {
        Some(across) => {
            for point in &points {
                point
                    .config
                    .sched
                    .check_host_budget(across, host)
                    .map_err(|e| format!("{}: {e}", point.label))?;
            }
        }
        None if max_intra > 1 => options.workers = Some((host / max_intra).max(1)),
        None => {}
    }

    let todo: Vec<usize> = (0..points.len()).filter(|&i| rows[i].is_none()).collect();
    let jobs: Vec<SweepJob<(tenways_waste::RunRecord, f64)>> = todo
        .iter()
        .map(|&i| {
            let config = points[i].config.clone();
            SweepJob::new(points[i].label.clone(), move || {
                let t0 = std::time::Instant::now();
                let record = Experiment::from_config(&config)
                    .map_err(|e| e.to_string())?
                    .run()
                    .map_err(|e| e.to_string())?;
                Ok((record, t0.elapsed().as_secs_f64() * 1e3))
            })
        })
        .collect();

    let total = points.len();
    let state = Mutex::new((rows, 0usize)); // (rows, completions since checkpoint)
    let runner = SweepRunner::with_options(options);
    let batch = runner.run_observed(
        jobs,
        |j, outcome: &JobOutcome<(tenways_waste::RunRecord, f64)>| {
            let i = todo[j];
            if params.verbose {
                match &outcome.result {
                    Ok((r, sim_ms)) => eprintln!(
                        "[sweep {}] {} {} ({} cycles, {sim_ms:.1} ms)",
                        spec.id,
                        outcome.status().as_str(),
                        points[i].label,
                        r.summary.cycles
                    ),
                    Err(e) => eprintln!(
                        "[sweep {}] {} {}: {e}",
                        spec.id,
                        outcome.status().as_str(),
                        points[i].label
                    ),
                }
            }
            if let Ok((record, sim_ms)) = &outcome.result {
                if let Some(cache) = &cache {
                    let mut store = cache.lock().unwrap_or_else(|e| e.into_inner());
                    if let Err(e) = store.put(&points[i].config.cache_key(), record.to_json()) {
                        eprintln!("[sweep {}] cache write failed: {e}", spec.id);
                    }
                }
                let row = ok_row(&points[i], record, *sim_ms, outcome.attempts);
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.0[i] = Some(row);
                st.1 += 1;
                if params.checkpoint_every > 0 && st.1 >= params.checkpoint_every {
                    st.1 = 0;
                    if let Err(e) = write_checkpoint(&partial_path, spec, total, &st.0) {
                        eprintln!("[sweep {}] checkpoint write failed: {e}", spec.id);
                    }
                }
            }
        },
    );

    // Assemble the final rows in point order.
    let (mut rows, _) = state.into_inner().unwrap_or_else(|e| e.into_inner());
    for (j, outcome) in batch.outcomes.iter().enumerate() {
        let i = todo[j];
        if rows[i].is_none() {
            rows[i] = Some(err_row(&points[i], outcome));
        }
    }
    let rows: Vec<Json> = rows
        .into_iter()
        .map(|r| r.expect("every point has a row"))
        .collect();

    let (doc, ok, failed, skipped) = sweep_doc(spec, total, rows);
    crate::write_json_atomic(&final_path, &doc)?;

    // A fully-ok sweep needs no checkpoint; otherwise keep it so a later
    // run can reuse the completed rows while retrying the rest.
    if failed == 0 && skipped == 0 {
        let _ = std::fs::remove_file(&partial_path);
    }

    Ok(SweepReport {
        path: final_path,
        doc,
        ok,
        failed,
        skipped,
        reused,
        cached,
    })
}

/// Assembles the final `bench_rows.v1` document and tallies row statuses.
fn sweep_doc(spec: &SweepSpec, total: usize, rows: Vec<Json>) -> (Json, usize, usize, usize) {
    let (mut ok, mut failed, mut skipped) = (0usize, 0usize, 0usize);
    for row in &rows {
        match row.get("status").and_then(Json::as_str) {
            Some("ok") => ok += 1,
            Some("failed") => failed += 1,
            _ => skipped += 1,
        }
    }
    let doc = Json::obj([
        ("schema_version", Json::U64(BENCH_ROWS_SCHEMA_VERSION)),
        ("id", Json::from(spec.id.clone())),
        ("title", Json::from(spec.resolved_title())),
        ("config", spec.base.to_json()),
        (
            "grid",
            Json::obj(
                spec.grid
                    .iter()
                    .map(|(k, vs)| (k.clone(), Json::Arr(vs.clone()))),
            ),
        ),
        (
            "summary",
            Json::obj([
                ("total", Json::from(total)),
                ("ok", Json::from(ok)),
                ("failed", Json::from(failed)),
                ("skipped", Json::from(skipped)),
            ]),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    (doc, ok, failed, skipped)
}

/// The row for a completed point: the standard headline metrics, the
/// host-side cost of producing them (`sim_ms` wall milliseconds and the
/// implied simulated cycles per wall second), the point's axis
/// assignments, and its status. This exact JSON is what the checkpoint
/// stores, so resumed and fresh rows render identically — a resumed row
/// keeps the wall time of the run that actually produced it.
fn ok_row(
    point: &SweepPoint,
    record: &tenways_waste::RunRecord,
    sim_ms: f64,
    attempts: u32,
) -> Json {
    let mut pairs = match record_row(&point.label, record) {
        Json::Obj(pairs) => pairs,
        other => vec![("row".to_string(), other)],
    };
    pairs.push(("sim_ms".to_string(), Json::F64(sim_ms)));
    let cycles_per_sec = if sim_ms > 0.0 {
        record.summary.cycles as f64 / (sim_ms / 1e3)
    } else {
        0.0
    };
    pairs.push(("sim_cycles_per_sec".to_string(), Json::F64(cycles_per_sec)));
    if !point.overlay.is_empty() {
        pairs.push(("point".to_string(), Json::Obj(point.overlay.to_vec())));
    }
    pairs.push(("status".to_string(), Json::from("ok")));
    if attempts > 1 {
        pairs.push(("attempts".to_string(), Json::U64(u64::from(attempts))));
    }
    Json::Obj(pairs)
}

/// The row for a failed or skipped point.
fn err_row(point: &SweepPoint, outcome: &JobOutcome<(tenways_waste::RunRecord, f64)>) -> Json {
    let mut pairs = vec![("label".to_string(), Json::from(point.label.clone()))];
    if !point.overlay.is_empty() {
        pairs.push(("point".to_string(), Json::Obj(point.overlay.to_vec())));
    }
    pairs.push(("status".to_string(), Json::from(outcome.status().as_str())));
    if let Err(e) = &outcome.result {
        if !matches!(e, SweepError::Cancelled) {
            pairs.push(("error".to_string(), Json::from(e.to_string())));
        }
    }
    if outcome.attempts > 1 {
        pairs.push((
            "attempts".to_string(),
            Json::U64(u64::from(outcome.attempts)),
        ));
    }
    Json::Obj(pairs)
}

/// The row for a point answered from an already-serialized record (a
/// local cache hit or a server answer) — the standard metrics via
/// [`record_row_json`], zero host simulation cost, and a provenance
/// marker (`"cache": "hit"` locally, `"served": "cached"|"computed"`
/// in server mode).
fn record_json_row(point: &SweepPoint, record: &Json, origin: (&str, &str)) -> Json {
    let mut pairs = match record_row_json(&point.label, record) {
        Json::Obj(pairs) => pairs,
        other => vec![("row".to_string(), other)],
    };
    pairs.push(("sim_ms".to_string(), Json::F64(0.0)));
    pairs.push(("sim_cycles_per_sec".to_string(), Json::F64(0.0)));
    pairs.push((origin.0.to_string(), Json::from(origin.1)));
    if !point.overlay.is_empty() {
        pairs.push(("point".to_string(), Json::Obj(point.overlay.to_vec())));
    }
    pairs.push(("status".to_string(), Json::from("ok")));
    Json::Obj(pairs)
}

/// The row for a local [`ResultCache`] hit.
fn cached_row(point: &SweepPoint, record: &Json, source: &str) -> Json {
    record_json_row(point, record, ("cache", source))
}

/// The row for a point a remote server could not answer.
fn server_err_row(point: &SweepPoint, status: &str, error: &str) -> Json {
    let mut pairs = vec![("label".to_string(), Json::from(point.label.clone()))];
    if !point.overlay.is_empty() {
        pairs.push(("point".to_string(), Json::Obj(point.overlay.to_vec())));
    }
    pairs.push(("status".to_string(), Json::from(status)));
    pairs.push(("error".to_string(), Json::from(error)));
    Json::Obj(pairs)
}

/// How often server mode polls `GET /jobs/<key>` for a queued point.
const JOB_POLL_INTERVAL: std::time::Duration = std::time::Duration::from_millis(200);

/// How long server mode waits for one queued point before failing its
/// row (when the sweep options carry no per-job budget).
const DEFAULT_SERVER_ROW_BUDGET: std::time::Duration = std::time::Duration::from_secs(600);

/// How many times server mode re-submits points the server's admission
/// queue rejected, and the envelope of the jittered exponential backoff
/// between rounds (see [`rejection_backoff`]).
const REJECTION_ROUNDS: usize = 40;
const REJECTION_BACKOFF_BASE: std::time::Duration = std::time::Duration::from_millis(250);
const REJECTION_BACKOFF_CAP: std::time::Duration = std::time::Duration::from_secs(5);

/// The sleep before rejection-retry round `round` (1-based): exponential
/// from [`REJECTION_BACKOFF_BASE`] capped at [`REJECTION_BACKOFF_CAP`],
/// scaled by a deterministic per-client jitter factor in `[0.5, 1.5)`.
/// The jitter matters more than the curve: a fixed interval would march
/// every client rejected by the same saturated server (or router) back
/// in lockstep, re-saturating the queue each round — the thundering
/// herd this module exists to measure, not to cause. Hashing
/// `salt ^ round` (splitmix64) decorrelates clients without pulling in
/// a clock or an RNG dependency.
fn rejection_backoff(salt: u64, round: usize) -> std::time::Duration {
    let doublings = u32::try_from(round.saturating_sub(1))
        .unwrap_or(u32::MAX)
        .min(16);
    let base = REJECTION_BACKOFF_BASE
        .saturating_mul(1u32 << doublings.min(5))
        .min(REJECTION_BACKOFF_CAP);
    let mut z = salt ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    base.mul_f64(0.5 + unit)
}

/// A per-client jitter seed: the process id folded with the server
/// address, so concurrent sweep clients (and re-runs) spread out.
fn rejection_salt(addr: &str) -> u64 {
    addr.bytes().fold(u64::from(std::process::id()), |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u64::from(b))
    })
}

/// [`run_sweep`] as a thin client of a running `tenways serve` instance
/// (or a `tenways route` router fronting several — the router answers
/// the identical `/batch`, `/jobs/<key>`, and `/stats` documents, so the
/// address is interchangeable):
/// the grid expands locally, the whole batch goes to `POST /batch` in one
/// request (the server canonicalizes, deduplicates, and answers warm keys
/// from its cache), points the server left `queued` are polled via
/// `GET /jobs/<key>`, and points its admission queue `rejected` are
/// re-submitted with backoff. The final document is the same
/// `bench_rows.v1` layout `run_sweep` writes, with each ok row marked
/// `"served": "cached"` or `"served": "computed"`.
///
/// # Errors
///
/// Returns a message for infrastructure problems: a malformed grid, an
/// unreachable server, a non-200 `/batch` answer, or an unwritable
/// output directory. Per-point failures (including rejection retries
/// running out) are reported in the rows, like every other sweep.
pub fn run_sweep_server(
    spec: &SweepSpec,
    addr: &str,
    params: &SweepParams,
) -> Result<SweepReport, String> {
    let points = spec.points()?;
    std::fs::create_dir_all(&params.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", params.out_dir.display()))?;
    let final_path = params.out_dir.join(format!("{}.json", spec.id));

    let mut rows: Vec<Option<Json>> = vec![None; points.len()];
    let mut cached = 0usize;
    let mut queued: Vec<(usize, String)> = Vec::new();
    let mut todo: Vec<usize> = (0..points.len()).collect();
    let mut rounds = 0usize;
    while !todo.is_empty() {
        let body = Json::obj([(
            "configs",
            Json::Arr(
                todo.iter()
                    .map(|&i| {
                        Json::obj([
                            ("label", Json::from(points[i].label.clone())),
                            ("config", points[i].config.to_json()),
                        ])
                    })
                    .collect(),
            ),
        )])
        .to_string();
        let (status, doc) = http_call(addr, "POST", "/batch", Some(("application/json", &body)))?;
        if status != 200 {
            return Err(format!("server {addr} answered {status} to /batch: {doc}"));
        }
        let results = doc
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("server {addr} sent a /batch body without results"))?;
        if results.len() != todo.len() {
            return Err(format!(
                "server {addr} answered {} results for {} configs",
                results.len(),
                todo.len()
            ));
        }
        let mut rejected: Vec<usize> = Vec::new();
        for (slot, item) in results.iter().enumerate() {
            let i = todo[slot];
            let key = item.get("key").and_then(Json::as_str).unwrap_or("");
            let verdict = item.get("status").and_then(Json::as_str).unwrap_or("?");
            if params.verbose {
                eprintln!("[sweep {}] server {verdict} {}", spec.id, points[i].label);
            }
            match (verdict, item.get("record")) {
                ("cached", Some(record)) => {
                    rows[i] = Some(record_json_row(&points[i], record, ("served", "cached")));
                    cached += 1;
                }
                ("computed", Some(record)) => {
                    rows[i] = Some(record_json_row(&points[i], record, ("served", "computed")));
                }
                ("queued", _) => queued.push((i, key.to_string())),
                ("rejected", _) => rejected.push(i),
                ("failed", _) => {
                    let error = item
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("server reported failure");
                    rows[i] = Some(server_err_row(&points[i], "failed", error));
                }
                (other, _) => {
                    rows[i] = Some(server_err_row(
                        &points[i],
                        "failed",
                        &format!("unrecognized server batch status `{other}`"),
                    ));
                }
            }
        }
        if rejected.is_empty() {
            break;
        }
        rounds += 1;
        if rounds > REJECTION_ROUNDS {
            for i in rejected {
                rows[i] = Some(server_err_row(
                    &points[i],
                    "failed",
                    "server admission queue stayed full through every retry",
                ));
            }
            break;
        }
        std::thread::sleep(rejection_backoff(rejection_salt(addr), rounds));
        todo = rejected;
    }

    // Poll the points the server accepted but had not finished by its
    // sync timeout.
    let row_budget = params
        .options
        .job_budget_ms
        .map_or(DEFAULT_SERVER_ROW_BUDGET, std::time::Duration::from_millis);
    for (i, key) in queued {
        let deadline = std::time::Instant::now() + row_budget;
        loop {
            let (status, doc) = http_call(addr, "GET", &format!("/jobs/{key}"), None)?;
            match doc.get("status").and_then(Json::as_str) {
                Some("done") => {
                    let record = doc
                        .get("record")
                        .ok_or_else(|| format!("server {addr} sent done without a record"))?;
                    rows[i] = Some(record_json_row(&points[i], record, ("served", "computed")));
                    break;
                }
                Some("failed") => {
                    let error = doc
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("server reported failure");
                    rows[i] = Some(server_err_row(&points[i], "failed", error));
                    break;
                }
                Some("pending" | "running") => {}
                other => {
                    rows[i] = Some(server_err_row(
                        &points[i],
                        "failed",
                        &format!("server answered {status} / {other:?} while polling {key}"),
                    ));
                    break;
                }
            }
            if std::time::Instant::now() >= deadline {
                rows[i] = Some(server_err_row(
                    &points[i],
                    "failed",
                    &format!("job {key} still unfinished after {}s", row_budget.as_secs()),
                ));
                break;
            }
            std::thread::sleep(JOB_POLL_INTERVAL);
        }
    }

    let total = points.len();
    let rows: Vec<Json> = rows
        .into_iter()
        .map(|r| r.expect("every point has a row"))
        .collect();
    let (doc, ok, failed, skipped) = sweep_doc(spec, total, rows);
    crate::write_json_atomic(&final_path, &doc)?;
    Ok(SweepReport {
        path: final_path,
        doc,
        ok,
        failed,
        skipped,
        reused: 0,
        cached,
    })
}

/// Atomically writes the checkpoint document (write-then-rename, so a
/// sweep killed mid-write never leaves a truncated checkpoint).
fn write_checkpoint(
    path: &Path,
    spec: &SweepSpec,
    total: usize,
    rows: &[Option<Json>],
) -> Result<(), String> {
    let completed: Vec<Json> = rows
        .iter()
        .enumerate()
        .filter_map(|(i, row)| {
            row.as_ref()
                .map(|row| Json::obj([("index", Json::from(i)), ("row", row.clone())]))
        })
        .collect();
    let doc = Json::obj([
        ("schema_version", Json::U64(CHECKPOINT_SCHEMA_VERSION)),
        ("kind", Json::from("sweep_checkpoint")),
        ("id", Json::from(spec.id.clone())),
        ("total", Json::from(total)),
        ("completed", Json::Arr(completed)),
    ]);
    crate::write_json_atomic(path, &doc)
}

/// Loads and validates a checkpoint against this sweep's points. Returns
/// `(index, row)` pairs for rows that can be reused.
fn load_checkpoint(
    path: &Path,
    spec: &SweepSpec,
    points: &[SweepPoint],
) -> Result<Vec<(usize, Json)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read checkpoint: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("malformed checkpoint: {e}"))?;
    if doc.get("kind").and_then(Json::as_str) != Some("sweep_checkpoint") {
        return Err("not a sweep checkpoint".to_string());
    }
    if doc.get("id").and_then(Json::as_str) != Some(spec.id.as_str()) {
        return Err("checkpoint belongs to a different sweep id".to_string());
    }
    if doc.get("total").and_then(Json::as_u64) != Some(points.len() as u64) {
        return Err("grid size changed since the checkpoint was written".to_string());
    }
    let completed = doc
        .get("completed")
        .and_then(Json::as_array)
        .ok_or("checkpoint has no completed rows")?;
    let mut restored = Vec::with_capacity(completed.len());
    for entry in completed {
        let index = entry
            .get("index")
            .and_then(Json::as_u64)
            .ok_or("checkpoint row missing index")? as usize;
        let row = entry.get("row").ok_or("checkpoint row missing body")?;
        let point = points
            .get(index)
            .ok_or("checkpoint row index out of range")?;
        if row.get("label").and_then(Json::as_str) != Some(point.label.as_str()) {
            return Err(format!(
                "checkpoint row {index} labelled `{}` but the grid expands to `{}`",
                row.get("label").and_then(Json::as_str).unwrap_or("?"),
                point.label
            ));
        }
        if row.get("status").and_then(Json::as_str) == Some("ok") {
            restored.push((index, row.clone()));
        }
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: &str = "workload = \"lu\"\nscale = 1\nseed = 3\n\n[sweep]\nid = \"demo\"\n\n[grid]\nthreads = [2, 3]\nmodel = [\"sc\", \"rmo\"]\n";

    #[test]
    fn grid_expands_cross_product_in_document_order() {
        let spec = SweepSpec::from_toml_str(GRID, "fallback").unwrap();
        assert_eq!(spec.id, "demo");
        let points = spec.points().unwrap();
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "threads=2,model=sc",
                "threads=2,model=rmo",
                "threads=3,model=sc",
                "threads=3,model=rmo",
            ]
        );
        assert_eq!(points[2].config.threads, 3);
        assert_eq!(points[2].config.workload, "lu");
    }

    #[test]
    fn gridless_file_is_a_single_point() {
        let spec = SweepSpec::from_toml_str("workload = \"lu\"\n", "solo").unwrap();
        assert_eq!(spec.id, "solo");
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].label, "base");
    }

    #[test]
    fn empty_axis_yields_an_empty_sweep() {
        let spec = SweepSpec::from_toml_str("[grid]\nthreads = []\n", "empty").unwrap();
        assert!(spec.points().unwrap().is_empty());
    }

    #[test]
    fn dotted_axes_reach_into_sections() {
        let spec = SweepSpec::from_toml_str("[grid]\n\"machine.dram_latency\" = [100, 250]\n", "d")
            .unwrap();
        let points = spec.points().unwrap();
        assert_eq!(points[1].config.machine.dram_latency, 250);
        assert_eq!(points[1].label, "machine.dram_latency=250");
    }

    #[test]
    fn bad_axis_types_fail_the_whole_sweep() {
        let spec = SweepSpec::from_toml_str("[grid]\nthreads = [\"many\"]\n", "bad").unwrap();
        assert!(spec.points().unwrap_err().contains("threads"));
        let spec = SweepSpec::from_toml_str("[grid]\nnosuchfield = [1]\n", "bad").unwrap();
        assert!(spec.points().unwrap_err().contains("nosuchfield"));
    }

    #[test]
    fn scalar_axis_pins_one_value() {
        let spec = SweepSpec::from_toml_str("[grid]\nthreads = 4\nseed = [1, 2]\n", "p").unwrap();
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.config.threads == 4));
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenways-grid-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn local_cache_answers_warm_keys_without_resimulating() {
        let root = tmp_dir("cache");
        let spec = SweepSpec::from_toml_str(GRID, "demo").unwrap();
        let params = SweepParams {
            out_dir: root.join("out"),
            cache_dir: Some(root.join("cache")),
            resume: false,
            checkpoint_every: 0,
            ..SweepParams::default()
        };
        let cold = run_sweep(&spec, &params).unwrap();
        assert_eq!(cold.ok, 4);
        assert_eq!(cold.cached, 0, "first run has nothing cached");

        // Same grid, fresh output: every row must come from the cache,
        // carry the hit marker, and match the simulated metrics.
        let warm_params = SweepParams {
            out_dir: root.join("out2"),
            ..params.clone()
        };
        let warm = run_sweep(&spec, &warm_params).unwrap();
        assert_eq!(warm.ok, 4);
        assert_eq!(warm.cached, 4, "second run is all cache hits");
        let cold_rows = cold.doc.get("rows").and_then(Json::as_array).unwrap();
        let warm_rows = warm.doc.get("rows").and_then(Json::as_array).unwrap();
        for (c, w) in cold_rows.iter().zip(warm_rows) {
            assert_eq!(w.get("cache").and_then(Json::as_str), Some("hit"));
            for metric in ["label", "cycles", "retired_ops", "consistency_cycles"] {
                assert_eq!(
                    c.get(metric).map(Json::to_string),
                    w.get(metric).map(Json::to_string),
                    "cached row diverges on {metric}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn server_mode_posts_the_grid_and_marks_served_rows() {
        use crate::serve::{serve_http, ServeOptions, SimService};
        use std::sync::Arc;

        let root = tmp_dir("server");
        let svc = Arc::new(
            SimService::new(ServeOptions {
                workers: 2,
                cache_dir: root.join("srv-cache"),
                ..ServeOptions::default()
            })
            .unwrap(),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || serve_http(svc, listener, Some(2), false))
        };

        let spec = SweepSpec::from_toml_str(GRID, "demo").unwrap();
        let params = SweepParams {
            out_dir: root.join("out"),
            ..SweepParams::default()
        };
        let cold = run_sweep_server(&spec, &addr, &params).unwrap();
        assert_eq!(cold.ok, 4);
        assert_eq!(cold.cached, 0);
        assert_eq!(svc.sim_runs(), 4);
        let rows = cold.doc.get("rows").and_then(Json::as_array).unwrap();
        assert!(rows
            .iter()
            .all(|r| r.get("served").and_then(Json::as_str) == Some("computed")));

        // Rerunning the same grid is answered entirely from the server's
        // cache: zero additional simulations, rows marked cached.
        let warm_params = SweepParams {
            out_dir: root.join("out2"),
            ..params
        };
        let warm = run_sweep_server(&spec, &addr, &warm_params).unwrap();
        assert_eq!(warm.ok, 4);
        assert_eq!(warm.cached, 4);
        assert_eq!(svc.sim_runs(), 4, "warm grid must not simulate");
        let warm_rows = warm.doc.get("rows").and_then(Json::as_array).unwrap();
        for (c, w) in rows.iter().zip(warm_rows) {
            assert_eq!(w.get("served").and_then(Json::as_str), Some("cached"));
            assert_eq!(
                c.get("cycles").map(Json::to_string),
                w.get("cycles").map(Json::to_string)
            );
        }
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rejection_backoff_is_jittered_within_its_envelope() {
        // Every round stays inside [0.5, 1.5) of its exponential base,
        // the base caps, and distinct clients genuinely decorrelate.
        let base_ms = [250u64, 500, 1000, 2000, 4000, 5000, 5000, 5000];
        for (round, &base) in (1..=8).zip(&base_ms) {
            for salt in [rejection_salt("127.0.0.1:7417"), rejection_salt("router:9")] {
                let ms = rejection_backoff(salt, round).as_millis() as u64;
                assert!(
                    ms >= base / 2 && ms < base + base / 2,
                    "round {round}: {ms}ms outside [{}, {})",
                    base / 2,
                    base + base / 2
                );
            }
        }
        let a: Vec<_> = (1..=8).map(|r| rejection_backoff(1, r)).collect();
        let b: Vec<_> = (1..=8).map(|r| rejection_backoff(2, r)).collect();
        assert_ne!(a, b, "two clients must not sleep in lockstep");
    }
}
