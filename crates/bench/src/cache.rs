//! The content-addressed result cache behind `tenways serve`:
//! [`ResultCache`].
//!
//! Every simulation in this workspace is deterministic, so a completed
//! `run_record.v1` document is fully identified by the canonical hash of
//! its configuration ([`SimConfig::cache_key`](tenways_waste::SimConfig::cache_key)).
//! This module stores those records in two tiers:
//!
//! * an **in-memory LRU** of the hottest entries (bounded by
//!   `mem_capacity`; a disk hit is promoted into it), and
//! * a **disk store** under the cache directory — one
//!   `<key>.entry.json` file per record plus an `index.json` listing the
//!   known keys, both written atomically via the temp-file + rename
//!   pattern ([`crate::write_json_atomic`]), so a crash mid-write can
//!   never corrupt an entry or the index.
//!
//! Robustness contract: a truncated, garbage, wrong-schema, or
//! wrong-key entry file is treated as a **miss** — the caller recomputes
//! and the fresh `put` overwrites the bad bytes. The cache never crashes
//! on, and never serves, a corrupt entry. A missing or corrupt index is
//! rebuilt by scanning the directory for entry files.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use tenways_sim::json::Json;

/// Version of the on-disk cache entry / index layout; bumped on any
/// breaking change. Entries with a different version are misses.
pub const CACHE_ENTRY_SCHEMA_VERSION: u64 = 1;

/// Counters the cache keeps about its own behaviour (monotonic since
/// open; the serve layer aggregates these into `/stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups answered from the disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Disk entries rejected as corrupt (counted within `misses`).
    pub corrupt_entries: u64,
    /// In-memory entries evicted by the LRU bound.
    pub evictions: u64,
}

/// A two-tier (memory LRU + atomic disk store) map from canonical config
/// hashes to `run_record.v1` JSON trees. See the [module docs](self).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    mem_capacity: usize,
    mem: HashMap<String, Json>,
    /// LRU order: front = least recently used, back = most recent.
    order: Vec<String>,
    index: Vec<String>,
    stats: CacheStats,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory and loads the index.
    /// A corrupt or missing index is rebuilt by scanning for entry files —
    /// never an error.
    ///
    /// `mem_capacity` bounds the in-memory tier (0 disables it; every hit
    /// then reads disk). The disk tier is unbounded.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, mem_capacity: usize) -> Result<ResultCache, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        let mut cache = ResultCache {
            dir,
            mem_capacity,
            mem: HashMap::new(),
            order: Vec::new(),
            index: Vec::new(),
            stats: CacheStats::default(),
        };
        cache.index = cache.load_index().unwrap_or_else(|| cache.scan_entries());
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries currently held in the memory tier.
    pub fn len_mem(&self) -> usize {
        self.mem.len()
    }

    /// Entries the disk index knows about.
    pub fn len_disk(&self) -> usize {
        self.index.len()
    }

    /// The cache's behaviour counters since open.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, checking memory first, then disk. A disk hit is
    /// promoted into the memory LRU. Any disk problem — unreadable file,
    /// garbage bytes, wrong schema version, entry recorded under a
    /// different key — is a miss, never an error.
    pub fn get(&mut self, key: &str) -> Option<Json> {
        if let Some(record) = self.mem.get(key).cloned() {
            self.touch(key);
            self.stats.mem_hits += 1;
            return Some(record);
        }
        match self.load_entry(key) {
            Some(record) => {
                self.stats.disk_hits += 1;
                self.insert_mem(key.to_string(), record.clone());
                Some(record)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `record` under `key` in both tiers. The entry file and the
    /// index are each written atomically; an existing (possibly corrupt)
    /// entry under the same key is overwritten.
    ///
    /// # Errors
    ///
    /// Returns a message when the disk write fails; the memory tier is
    /// updated regardless, so the current process still benefits.
    pub fn put(&mut self, key: &str, record: Json) -> Result<(), String> {
        let entry = Json::obj([
            ("schema_version", Json::U64(CACHE_ENTRY_SCHEMA_VERSION)),
            ("kind", Json::from("cache_entry")),
            ("key", Json::from(key)),
            ("record", record.clone()),
        ]);
        self.insert_mem(key.to_string(), record);
        crate::write_json_atomic(&self.entry_path(key), &entry)?;
        if !self.index.iter().any(|k| k == key) {
            self.index.push(key.to_string());
            self.write_index()?;
        }
        Ok(())
    }

    /// Marks `key` most-recently-used in the LRU order.
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Inserts into the memory tier, evicting the least recently used
    /// entry when the capacity bound is hit.
    fn insert_mem(&mut self, key: String, record: Json) {
        if self.mem_capacity == 0 {
            return;
        }
        if self.mem.insert(key.clone(), record).is_some() {
            self.touch(&key);
            return;
        }
        self.order.push(key);
        while self.mem.len() > self.mem_capacity {
            let oldest = self.order.remove(0);
            self.mem.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        // Keys are hex digests, but sanitize anyway so a hostile key can
        // never traverse out of the cache directory.
        let safe: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}.entry.json"))
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.json")
    }

    /// Reads and validates one entry file; `None` on any defect.
    fn load_entry(&mut self, key: &str) -> Option<Json> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => return None, // absent (or unreadable) = plain miss
        };
        let defect = |cache: &mut ResultCache| {
            cache.stats.corrupt_entries += 1;
            None
        };
        let Ok(doc) = Json::parse(&text) else {
            return defect(self);
        };
        if doc.get("schema_version").and_then(Json::as_u64) != Some(CACHE_ENTRY_SCHEMA_VERSION)
            || doc.get("kind").and_then(Json::as_str) != Some("cache_entry")
            || doc.get("key").and_then(Json::as_str) != Some(key)
        {
            return defect(self);
        }
        match doc.get("record") {
            Some(record @ Json::Obj(_)) => Some(record.clone()),
            _ => defect(self),
        }
    }

    /// Loads the index file; `None` when absent or corrupt (the caller
    /// falls back to a directory scan).
    fn load_index(&self) -> Option<Vec<String>> {
        let text = std::fs::read_to_string(self.index_path()).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("kind").and_then(Json::as_str) != Some("cache_index")
            || doc.get("schema_version").and_then(Json::as_u64) != Some(CACHE_ENTRY_SCHEMA_VERSION)
        {
            return None;
        }
        let entries = doc.get("entries").and_then(Json::as_array)?;
        entries
            .iter()
            .map(|e| e.as_str().map(str::to_string))
            .collect()
    }

    /// Rebuilds the key list by scanning the directory for entry files.
    fn scan_entries(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|name| name.strip_suffix(".entry.json").map(str::to_string))
            .collect();
        keys.sort();
        keys
    }

    fn write_index(&self) -> Result<(), String> {
        let doc = Json::obj([
            ("schema_version", Json::U64(CACHE_ENTRY_SCHEMA_VERSION)),
            ("kind", Json::from("cache_index")),
            (
                "entries",
                Json::Arr(self.index.iter().map(|k| Json::from(k.clone())).collect()),
            ),
        ]);
        crate::write_json_atomic(&self.index_path(), &doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: u64) -> Json {
        Json::obj([("schema_version", Json::U64(1)), ("cycles", Json::U64(n))])
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenways-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_get_round_trips_both_tiers() {
        let dir = tmp_dir("roundtrip");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(cache.get("k1"), None);
        cache.put("k1", record(7)).unwrap();
        assert_eq!(cache.get("k1"), Some(record(7)));
        assert_eq!(cache.stats().mem_hits, 1);

        // A fresh instance over the same directory hits disk.
        let mut fresh = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(fresh.len_disk(), 1);
        assert_eq!(fresh.len_mem(), 0);
        assert_eq!(fresh.get("k1"), Some(record(7)));
        assert_eq!(fresh.stats().disk_hits, 1);
        // ...and the disk hit was promoted into memory.
        assert_eq!(fresh.len_mem(), 1);
        assert_eq!(fresh.get("k1"), Some(record(7)));
        assert_eq!(fresh.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let dir = tmp_dir("lru");
        let mut cache = ResultCache::open(&dir, 2).unwrap();
        cache.put("a", record(1)).unwrap();
        cache.put("b", record(2)).unwrap();
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert!(cache.get("a").is_some());
        cache.put("c", record(3)).unwrap();
        assert_eq!(cache.len_mem(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.mem.contains_key("a"), "recently-used entry survives");
        assert!(cache.mem.contains_key("c"));
        assert!(!cache.mem.contains_key("b"), "LRU entry is evicted");
        // The evicted entry is still served — from disk — and re-promoted.
        assert_eq!(cache.get("b"), Some(record(2)));
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_the_memory_tier() {
        let dir = tmp_dir("mem0");
        let mut cache = ResultCache::open(&dir, 0).unwrap();
        cache.put("k", record(1)).unwrap();
        assert_eq!(cache.len_mem(), 0);
        assert_eq!(cache.get("k"), Some(record(1)));
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses_and_recoverable() {
        let dir = tmp_dir("corrupt");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        cache.put("k", record(9)).unwrap();
        let path = cache.entry_path("k");

        for (tag, bytes) in [
            ("truncated", &b"{\"schema_version\": 1, \"kind\": \"cac"[..]),
            ("garbage", &b"\x00\xffnot json at all"[..]),
            (
                "wrong-schema",
                br#"{"schema_version":99,"kind":"cache_entry","key":"k","record":{}}"#,
            ),
            (
                "wrong-key",
                br#"{"schema_version":1,"kind":"cache_entry","key":"other","record":{}}"#,
            ),
            (
                "wrong-kind",
                br#"{"schema_version":1,"kind":"index","key":"k","record":{}}"#,
            ),
            (
                "non-object-record",
                br#"{"schema_version":1,"kind":"cache_entry","key":"k","record":3}"#,
            ),
        ] {
            std::fs::write(&path, bytes).unwrap();
            let mut fresh = ResultCache::open(&dir, 4).unwrap();
            assert_eq!(fresh.get("k"), None, "{tag} entry must be a miss");
            // Recompute-and-overwrite: a put replaces the bad bytes and the
            // key serves again.
            fresh.put("k", record(10)).unwrap();
            let mut reread = ResultCache::open(&dir, 4).unwrap();
            assert_eq!(reread.get("k"), Some(record(10)), "{tag} recovery");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_missing_index_is_rebuilt_by_scan() {
        let dir = tmp_dir("index");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        cache.put("aaa", record(1)).unwrap();
        cache.put("bbb", record(2)).unwrap();
        let index_path = cache.index_path();

        std::fs::write(&index_path, b"garbage").unwrap();
        let rebuilt = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(rebuilt.len_disk(), 2);

        std::fs::remove_file(&index_path).unwrap();
        let mut rebuilt = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(rebuilt.len_disk(), 2);
        assert_eq!(rebuilt.get("aaa"), Some(record(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_stay_inside_the_cache_dir() {
        let dir = tmp_dir("hostile");
        let cache = ResultCache::open(&dir, 4).unwrap();
        let path = cache.entry_path("../../etc/passwd");
        assert!(path.starts_with(&dir), "{}", path.display());
        assert!(!path.to_string_lossy().contains(".."));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
