//! The content-addressed result cache behind `tenways serve`:
//! [`ResultCache`].
//!
//! Every simulation in this workspace is deterministic, so a completed
//! `run_record.v1` document is fully identified by the canonical hash of
//! its configuration ([`SimConfig::cache_key`](tenways_waste::SimConfig::cache_key)).
//! This module stores those records in two tiers:
//!
//! * an **in-memory LRU** of the hottest entries (bounded by
//!   `mem_capacity`; a disk hit is promoted into it), and
//! * a **disk store** under the cache directory — one
//!   `<key>.entry.json` file per record plus an `index.json` listing the
//!   known keys with their byte sizes in access order, both written
//!   atomically via the temp-file + rename pattern
//!   ([`crate::write_json_atomic`]), so a crash mid-write can never
//!   corrupt an entry or the index.
//!
//! The disk tier is **byte-budgeted**: when `disk_budget` is set, a `put`
//! that pushes the tier past the budget evicts least-recently-accessed
//! entries (file + index row, counted in
//! [`CacheCounters::disk_evictions`]) until the tier fits again. The
//! entry being written is never evicted by its own `put`, so a single
//! record larger than the whole budget still serves — the budget is a
//! steady-state bound, not an admission filter. Access order is
//! maintained in memory on every disk hit and persisted on `put`, so the
//! order survives restarts at put-granularity.
//!
//! Robustness contract: a truncated, garbage, wrong-schema, or
//! wrong-key entry file is treated as a **miss** — the caller recomputes
//! and the fresh `put` overwrites the bad bytes. The cache never crashes
//! on, and never serves, a corrupt entry. A missing or corrupt index is
//! rebuilt by scanning the directory for entry files (byte sizes from
//! file metadata).
//!
//! All behaviour counters live in an [`Arc<CacheCounters>`] of atomics
//! ([`ResultCache::counters`]): the serve layer's `/stats` endpoint reads
//! them without taking the cache lock, so stats traffic never contends
//! with the hot request path.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tenways_sim::json::Json;

/// Version of the on-disk cache entry / index layout; bumped on any
/// breaking change. Entries with a different version are misses.
pub const CACHE_ENTRY_SCHEMA_VERSION: u64 = 1;

/// Lock-free behaviour counters shared out of the cache via
/// [`ResultCache::counters`]. Monotonic counts plus a few gauges; all
/// relaxed atomics — readers want freshness, not ordering.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Lookups answered from the in-memory tier.
    pub mem_hits: AtomicU64,
    /// Lookups answered from the disk tier (and promoted to memory).
    pub disk_hits: AtomicU64,
    /// Lookups that found nothing usable.
    pub misses: AtomicU64,
    /// Disk entries rejected as corrupt (counted within `misses`).
    pub corrupt_entries: AtomicU64,
    /// In-memory entries evicted by the LRU bound.
    pub mem_evictions: AtomicU64,
    /// Disk entries evicted by the byte budget.
    pub disk_evictions: AtomicU64,
    /// Gauge: entries currently in the memory tier.
    pub mem_entries: AtomicU64,
    /// Gauge: entries currently in the disk index.
    pub disk_entries: AtomicU64,
    /// Gauge: total bytes the disk tier currently holds.
    pub disk_bytes: AtomicU64,
}

impl CacheCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the counters, for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups answered from the disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Disk entries rejected as corrupt (counted within `misses`).
    pub corrupt_entries: u64,
    /// In-memory entries evicted by the LRU bound.
    pub evictions: u64,
    /// Disk entries evicted by the byte budget.
    pub disk_evictions: u64,
    /// Total bytes the disk tier currently holds.
    pub disk_bytes: u64,
}

/// One disk-index row: a key plus the byte size of its entry file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    key: String,
    bytes: u64,
}

/// A two-tier (memory LRU + atomic disk store) map from canonical config
/// hashes to `run_record.v1` JSON trees. See the [module docs](self).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    mem_capacity: usize,
    disk_budget: Option<u64>,
    mem: HashMap<String, Json>,
    /// LRU order: front = least recently used, back = most recent.
    order: Vec<String>,
    /// Disk index in access order: front = least recently accessed.
    index: Vec<IndexEntry>,
    counters: Arc<CacheCounters>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory and loads the index,
    /// with an **unbounded** disk tier. A corrupt or missing index is
    /// rebuilt by scanning for entry files — never an error.
    ///
    /// `mem_capacity` bounds the in-memory tier (0 disables it; every hit
    /// then reads disk).
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, mem_capacity: usize) -> Result<ResultCache, String> {
        ResultCache::open_budgeted(dir, mem_capacity, None)
    }

    /// [`ResultCache::open`] with a disk-tier byte budget. `None` leaves
    /// the disk tier unbounded; `Some(bytes)` evicts least-recently-used
    /// entries on `put` until the tier fits.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created.
    pub fn open_budgeted(
        dir: impl Into<PathBuf>,
        mem_capacity: usize,
        disk_budget: Option<u64>,
    ) -> Result<ResultCache, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        let mut cache = ResultCache {
            dir,
            mem_capacity,
            disk_budget,
            mem: HashMap::new(),
            order: Vec::new(),
            index: Vec::new(),
            counters: Arc::new(CacheCounters::default()),
        };
        cache.index = cache.load_index().unwrap_or_else(|| cache.scan_entries());
        cache.sync_disk_gauges();
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured disk budget in bytes (`None` = unbounded).
    pub fn disk_budget(&self) -> Option<u64> {
        self.disk_budget
    }

    /// Entries currently held in the memory tier.
    pub fn len_mem(&self) -> usize {
        self.mem.len()
    }

    /// Entries the disk index knows about.
    pub fn len_disk(&self) -> usize {
        self.index.len()
    }

    /// Total bytes the disk tier currently holds (per the index).
    pub fn disk_bytes(&self) -> u64 {
        self.index.iter().map(|e| e.bytes).sum()
    }

    /// The shared atomic counters: clone the `Arc` to read hit/miss/
    /// eviction counts and tier gauges without holding the cache lock.
    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.counters)
    }

    /// A snapshot of the counters (tests and reports).
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        CacheStats {
            mem_hits: c.mem_hits.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            corrupt_entries: c.corrupt_entries.load(Ordering::Relaxed),
            evictions: c.mem_evictions.load(Ordering::Relaxed),
            disk_evictions: c.disk_evictions.load(Ordering::Relaxed),
            disk_bytes: c.disk_bytes.load(Ordering::Relaxed),
        }
    }

    /// Looks up `key`, checking memory first, then disk. A disk hit is
    /// promoted into the memory LRU and refreshes the key's disk access
    /// order. Any disk problem — unreadable file, garbage bytes, wrong
    /// schema version, entry recorded under a different key — is a miss,
    /// never an error.
    pub fn get(&mut self, key: &str) -> Option<Json> {
        if let Some(record) = self.mem.get(key).cloned() {
            self.touch(key);
            CacheCounters::bump(&self.counters.mem_hits);
            return Some(record);
        }
        match self.load_entry(key, true) {
            Some(record) => {
                CacheCounters::bump(&self.counters.disk_hits);
                self.touch_disk(key);
                self.insert_mem(key.to_string(), record.clone());
                Some(record)
            }
            None => {
                CacheCounters::bump(&self.counters.misses);
                None
            }
        }
    }

    /// Looks up `key` without counting a hit or a miss and without
    /// promoting or touching anything — the read-only probe behind
    /// `GET /jobs/<key>`, whose polls must not skew the hit/miss
    /// counters or the LRU orders.
    pub fn peek(&mut self, key: &str) -> Option<Json> {
        if let Some(record) = self.mem.get(key) {
            return Some(record.clone());
        }
        self.load_entry(key, false)
    }

    /// Stores `record` under `key` in both tiers. The entry file and the
    /// index are each written atomically; an existing (possibly corrupt)
    /// entry under the same key is overwritten. When the disk budget is
    /// exceeded, least-recently-accessed entries (never the one just
    /// written) are evicted until the tier fits.
    ///
    /// # Errors
    ///
    /// Returns a message when the disk write fails; the memory tier is
    /// updated regardless, so the current process still benefits.
    pub fn put(&mut self, key: &str, record: Json) -> Result<(), String> {
        let entry = Json::obj([
            ("schema_version", Json::U64(CACHE_ENTRY_SCHEMA_VERSION)),
            ("kind", Json::from("cache_entry")),
            ("key", Json::from(key)),
            ("record", record.clone()),
        ]);
        self.insert_mem(key.to_string(), record);
        let mut text = entry.pretty();
        text.push('\n');
        let bytes = text.len() as u64;
        crate::write_text_atomic(&self.entry_path(key), &text)?;
        if let Some(pos) = self.index.iter().position(|e| e.key == key) {
            self.index.remove(pos);
        }
        self.index.push(IndexEntry {
            key: key.to_string(),
            bytes,
        });
        self.enforce_disk_budget();
        self.sync_disk_gauges();
        self.write_index()
    }

    /// Evicts least-recently-accessed disk entries until the tier fits
    /// the budget. The most recent entry (the one a `put` just wrote) is
    /// never evicted, so an oversized single record still serves.
    fn enforce_disk_budget(&mut self) {
        let Some(budget) = self.disk_budget else {
            return;
        };
        while self.disk_bytes() > budget && self.index.len() > 1 {
            let victim = self.index.remove(0);
            let _ = std::fs::remove_file(self.entry_path(&victim.key));
            // The memory tier may still hold the record; that is fine —
            // it is bounded separately and a re-put restores the file.
            CacheCounters::bump(&self.counters.disk_evictions);
        }
    }

    /// Refreshes the gauge counters after an index mutation.
    fn sync_disk_gauges(&self) {
        self.counters
            .disk_entries
            .store(self.index.len() as u64, Ordering::Relaxed);
        self.counters
            .disk_bytes
            .store(self.disk_bytes(), Ordering::Relaxed);
    }

    /// Marks `key` most-recently-used in the memory LRU order.
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Marks `key` most-recently-accessed in the disk index order.
    fn touch_disk(&mut self, key: &str) {
        if let Some(pos) = self.index.iter().position(|e| e.key == key) {
            let e = self.index.remove(pos);
            self.index.push(e);
        }
    }

    /// Inserts into the memory tier, evicting the least recently used
    /// entry when the capacity bound is hit.
    fn insert_mem(&mut self, key: String, record: Json) {
        if self.mem_capacity == 0 {
            return;
        }
        if self.mem.insert(key.clone(), record).is_some() {
            self.touch(&key);
            return;
        }
        self.order.push(key);
        while self.mem.len() > self.mem_capacity {
            let oldest = self.order.remove(0);
            self.mem.remove(&oldest);
            CacheCounters::bump(&self.counters.mem_evictions);
        }
        self.counters
            .mem_entries
            .store(self.mem.len() as u64, Ordering::Relaxed);
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        // Keys are hex digests, but sanitize anyway so a hostile key can
        // never traverse out of the cache directory.
        let safe: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}.entry.json"))
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.json")
    }

    /// Reads and validates one entry file; `None` on any defect.
    /// `count_defects` suppresses the corrupt counter for [`peek`].
    fn load_entry(&mut self, key: &str, count_defects: bool) -> Option<Json> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => return None, // absent (or unreadable) = plain miss
        };
        let defect = |cache: &mut ResultCache| {
            if count_defects {
                CacheCounters::bump(&cache.counters.corrupt_entries);
            }
            None
        };
        let Ok(doc) = Json::parse(&text) else {
            return defect(self);
        };
        if doc.get("schema_version").and_then(Json::as_u64) != Some(CACHE_ENTRY_SCHEMA_VERSION)
            || doc.get("kind").and_then(Json::as_str) != Some("cache_entry")
            || doc.get("key").and_then(Json::as_str) != Some(key)
        {
            return defect(self);
        }
        match doc.get("record") {
            Some(record @ Json::Obj(_)) => Some(record.clone()),
            _ => defect(self),
        }
    }

    /// Loads the index file; `None` when absent or corrupt (the caller
    /// falls back to a directory scan). Accepts both the current
    /// `{key, bytes}` rows and the legacy bare-string rows (byte sizes
    /// recovered from file metadata).
    fn load_index(&self) -> Option<Vec<IndexEntry>> {
        let text = std::fs::read_to_string(self.index_path()).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("kind").and_then(Json::as_str) != Some("cache_index")
            || doc.get("schema_version").and_then(Json::as_u64) != Some(CACHE_ENTRY_SCHEMA_VERSION)
        {
            return None;
        }
        let entries = doc.get("entries").and_then(Json::as_array)?;
        entries
            .iter()
            .map(|e| match e {
                Json::Str(key) => Some(IndexEntry {
                    bytes: self.file_bytes(key),
                    key: key.clone(),
                }),
                Json::Obj(_) => {
                    let key = e.get("key")?.as_str()?.to_string();
                    let bytes = match e.get("bytes").and_then(Json::as_u64) {
                        Some(bytes) => bytes,
                        None => self.file_bytes(&key),
                    };
                    Some(IndexEntry { key, bytes })
                }
                _ => None,
            })
            .collect()
    }

    fn file_bytes(&self, key: &str) -> u64 {
        std::fs::metadata(self.entry_path(key)).map_or(0, |m| m.len())
    }

    /// Rebuilds the key list by scanning the directory for entry files.
    fn scan_entries(&self) -> Vec<IndexEntry> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys: Vec<IndexEntry> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let key = name.strip_suffix(".entry.json")?.to_string();
                let bytes = e.metadata().map_or(0, |m| m.len());
                Some(IndexEntry { key, bytes })
            })
            .collect();
        keys.sort_by(|a, b| a.key.cmp(&b.key));
        keys
    }

    fn write_index(&self) -> Result<(), String> {
        let doc = Json::obj([
            ("schema_version", Json::U64(CACHE_ENTRY_SCHEMA_VERSION)),
            ("kind", Json::from("cache_index")),
            (
                "entries",
                Json::Arr(
                    self.index
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("key", Json::from(e.key.clone())),
                                ("bytes", Json::U64(e.bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        crate::write_json_atomic(&self.index_path(), &doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn record(n: u64) -> Json {
        Json::obj([("schema_version", Json::U64(1)), ("cycles", Json::U64(n))])
    }

    /// A record padded to roughly `kb` kilobytes on disk.
    fn fat_record(n: u64, kb: usize) -> Json {
        Json::obj([
            ("schema_version", Json::U64(1)),
            ("cycles", Json::U64(n)),
            ("pad", Json::from("x".repeat(kb * 1024))),
        ])
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenways-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_get_round_trips_both_tiers() {
        let dir = tmp_dir("roundtrip");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(cache.get("k1"), None);
        cache.put("k1", record(7)).unwrap();
        assert_eq!(cache.get("k1"), Some(record(7)));
        assert_eq!(cache.stats().mem_hits, 1);

        // A fresh instance over the same directory hits disk.
        let mut fresh = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(fresh.len_disk(), 1);
        assert_eq!(fresh.len_mem(), 0);
        assert_eq!(fresh.get("k1"), Some(record(7)));
        assert_eq!(fresh.stats().disk_hits, 1);
        // ...and the disk hit was promoted into memory.
        assert_eq!(fresh.len_mem(), 1);
        assert_eq!(fresh.get("k1"), Some(record(7)));
        assert_eq!(fresh.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let dir = tmp_dir("lru");
        let mut cache = ResultCache::open(&dir, 2).unwrap();
        cache.put("a", record(1)).unwrap();
        cache.put("b", record(2)).unwrap();
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert!(cache.get("a").is_some());
        cache.put("c", record(3)).unwrap();
        assert_eq!(cache.len_mem(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.mem.contains_key("a"), "recently-used entry survives");
        assert!(cache.mem.contains_key("c"));
        assert!(!cache.mem.contains_key("b"), "LRU entry is evicted");
        // The evicted entry is still served — from disk — and re-promoted.
        assert_eq!(cache.get("b"), Some(record(2)));
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_the_memory_tier() {
        let dir = tmp_dir("mem0");
        let mut cache = ResultCache::open(&dir, 0).unwrap();
        cache.put("k", record(1)).unwrap();
        assert_eq!(cache.len_mem(), 0);
        assert_eq!(cache.get("k"), Some(record(1)));
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_evicts_least_recently_accessed_first() {
        let dir = tmp_dir("budget");
        // ~1 KiB records under a 3.5 KiB budget: the fourth put overflows.
        let budget = 3 * 1024 + 512;
        let mut cache = ResultCache::open_budgeted(&dir, 0, Some(budget as u64)).unwrap();
        cache.put("a", fat_record(1, 1)).unwrap();
        cache.put("b", fat_record(2, 1)).unwrap();
        cache.put("c", fat_record(3, 1)).unwrap();
        assert_eq!(cache.stats().disk_evictions, 0);
        // Touch `a` (disk hit — mem tier is off) so `b` is the victim.
        assert!(cache.get("a").is_some());
        cache.put("d", fat_record(4, 1)).unwrap();
        assert_eq!(cache.stats().disk_evictions, 1);
        assert!(cache.disk_bytes() <= budget as u64, "tier fits the budget");
        assert_eq!(cache.get("b"), None, "least-recently-accessed is gone");
        assert!(cache.get("a").is_some(), "recently-touched entry survives");
        assert!(cache.get("d").is_some(), "the new entry is never evicted");
        assert!(
            !cache.entry_path("b").exists(),
            "evicted entry file is removed"
        );

        // The eviction is durable: a reopen sees the same membership.
        let mut fresh = ResultCache::open_budgeted(&dir, 0, Some(budget as u64)).unwrap();
        assert_eq!(fresh.len_disk(), 3);
        assert_eq!(fresh.get("b"), None);
        assert!(fresh.get("d").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_entry_exceeds_budget_but_still_serves() {
        let dir = tmp_dir("oversize");
        let mut cache = ResultCache::open_budgeted(&dir, 0, Some(512)).unwrap();
        cache.put("big", fat_record(1, 4)).unwrap();
        // The entry is larger than the whole budget; it must survive its
        // own put and keep serving.
        assert!(cache.get("big").is_some());
        assert_eq!(cache.len_disk(), 1);
        // The next put evicts it (it is now the LRU entry).
        cache.put("big2", fat_record(2, 4)).unwrap();
        assert_eq!(cache.get("big"), None);
        assert!(cache.get("big2").is_some());
        assert_eq!(cache.stats().disk_evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_eviction_vs_readers_never_tears() {
        // Readers and writers share the cache under a mutex with a budget
        // tight enough to evict constantly. Every get must return either
        // None (a miss — the entry was evicted) or the exact record that
        // was put for that key: never a torn or mixed-up entry.
        let dir = tmp_dir("concurrent");
        let budget = 2 * 1024 + 512; // ~2 fat entries
        let cache = Arc::new(Mutex::new(
            ResultCache::open_budgeted(&dir, 1, Some(budget as u64)).unwrap(),
        ));
        let keys: Vec<String> = (0..6).map(|i| format!("key{i}")).collect();
        std::thread::scope(|scope| {
            for t in 0..3 {
                let cache = Arc::clone(&cache);
                let keys = keys.clone();
                scope.spawn(move || {
                    for round in 0..30 {
                        let i = (t * 7 + round) % keys.len();
                        let key = &keys[i];
                        let mut guard = cache.lock().unwrap();
                        if round % 3 == 0 {
                            guard.put(key, fat_record(i as u64, 1)).unwrap();
                        } else if let Some(record) = guard.get(key) {
                            assert_eq!(
                                record.get("cycles").and_then(Json::as_u64),
                                Some(i as u64),
                                "entry under {key} served someone else's record"
                            );
                        }
                    }
                });
            }
        });
        let guard = cache.lock().unwrap();
        assert!(guard.disk_bytes() <= budget as u64);
        assert!(guard.stats().disk_evictions > 0, "budget actually evicted");
        // Defect path under concurrency: corrupt one survivor, then prove
        // it reads as a miss and counts as corrupt.
        drop(guard);
        let survivor = {
            let guard = cache.lock().unwrap();
            guard.index.last().unwrap().key.clone()
        };
        let path = {
            let guard = cache.lock().unwrap();
            guard.entry_path(&survivor)
        };
        std::fs::write(&path, b"torn bytes").unwrap();
        let mut fresh = ResultCache::open_budgeted(&dir, 0, Some(budget as u64)).unwrap();
        assert_eq!(fresh.get(&survivor), None, "torn entry must be a miss");
        assert_eq!(fresh.stats().corrupt_entries, 1);
        assert_eq!(fresh.stats().misses, 1, "defects still count as misses");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_reads_without_counting_or_promoting() {
        let dir = tmp_dir("peek");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        cache.put("k", record(5)).unwrap();
        let mut fresh = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(fresh.peek("k"), Some(record(5)));
        assert_eq!(fresh.peek("absent"), None);
        let stats = fresh.stats();
        assert_eq!(
            (stats.mem_hits, stats.disk_hits, stats.misses),
            (0, 0, 0),
            "peek must not touch the hit/miss counters"
        );
        assert_eq!(fresh.len_mem(), 0, "peek must not promote");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses_and_recoverable() {
        let dir = tmp_dir("corrupt");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        cache.put("k", record(9)).unwrap();
        let path = cache.entry_path("k");

        for (tag, bytes) in [
            ("truncated", &b"{\"schema_version\": 1, \"kind\": \"cac"[..]),
            ("garbage", &b"\x00\xffnot json at all"[..]),
            (
                "wrong-schema",
                br#"{"schema_version":99,"kind":"cache_entry","key":"k","record":{}}"#,
            ),
            (
                "wrong-key",
                br#"{"schema_version":1,"kind":"cache_entry","key":"other","record":{}}"#,
            ),
            (
                "wrong-kind",
                br#"{"schema_version":1,"kind":"index","key":"k","record":{}}"#,
            ),
            (
                "non-object-record",
                br#"{"schema_version":1,"kind":"cache_entry","key":"k","record":3}"#,
            ),
        ] {
            std::fs::write(&path, bytes).unwrap();
            let mut fresh = ResultCache::open(&dir, 4).unwrap();
            assert_eq!(fresh.get("k"), None, "{tag} entry must be a miss");
            // Recompute-and-overwrite: a put replaces the bad bytes and the
            // key serves again.
            fresh.put("k", record(10)).unwrap();
            let mut reread = ResultCache::open(&dir, 4).unwrap();
            assert_eq!(reread.get("k"), Some(record(10)), "{tag} recovery");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_missing_index_is_rebuilt_by_scan() {
        let dir = tmp_dir("index");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        cache.put("aaa", record(1)).unwrap();
        cache.put("bbb", record(2)).unwrap();
        let index_path = cache.index_path();

        std::fs::write(&index_path, b"garbage").unwrap();
        let rebuilt = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(rebuilt.len_disk(), 2);
        assert!(rebuilt.disk_bytes() > 0, "scan recovers byte sizes");

        std::fs::remove_file(&index_path).unwrap();
        let mut rebuilt = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(rebuilt.len_disk(), 2);
        assert_eq!(rebuilt.get("aaa"), Some(record(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_string_index_entries_still_load() {
        let dir = tmp_dir("legacy-index");
        let mut cache = ResultCache::open(&dir, 4).unwrap();
        cache.put("abc", record(3)).unwrap();
        // Rewrite the index in the PR-8 format: bare string entries.
        let legacy = Json::obj([
            ("schema_version", Json::U64(CACHE_ENTRY_SCHEMA_VERSION)),
            ("kind", Json::from("cache_index")),
            ("entries", Json::Arr(vec![Json::from("abc")])),
        ]);
        crate::write_json_atomic(&cache.index_path(), &legacy).unwrap();
        let mut fresh = ResultCache::open(&dir, 4).unwrap();
        assert_eq!(fresh.len_disk(), 1);
        assert!(fresh.disk_bytes() > 0, "bytes recovered from metadata");
        assert_eq!(fresh.get("abc"), Some(record(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_stay_inside_the_cache_dir() {
        let dir = tmp_dir("hostile");
        let cache = ResultCache::open(&dir, 4).unwrap();
        let path = cache.entry_path("../../etc/passwd");
        assert!(path.starts_with(&dir), "{}", path.display());
        assert!(!path.to_string_lossy().contains(".."));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
