//! Criterion microbenchmarks of the simulator substrate: cache array
//! operations, fabric throughput, DRAM scheduling, protocol transactions,
//! and whole-machine simulation rate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tenways_coherence::{sandbox::ProtocolSandbox, AccessKind};
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec, SpecConfig};
use tenways_mem::{CacheArray, CacheParams, DramBanks, DramParams, Replacement};
use tenways_noc::Fabric;
use tenways_sim::{Addr, BlockAddr, CoreId, Cycle, MachineConfig, NodeId};
use tenways_workloads::{WorkloadKind, WorkloadParams};

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache_array_insert_get", |b| {
        let params = CacheParams::new(128, 4, Replacement::Lru).unwrap();
        b.iter_batched(
            || CacheArray::<u64>::new(params),
            |mut cache| {
                for i in 0..1024u64 {
                    cache.insert(BlockAddr(i * 7 % 640), i);
                    cache.get(BlockAddr(i * 3 % 640));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fabric(c: &mut Criterion) {
    c.bench_function("fabric_throughput_1k_msgs", |b| {
        b.iter_batched(
            || Fabric::<u32>::new(12, 6, 2, 2),
            |mut fabric| {
                let mut cy = 0u64;
                for i in 0..1_000u32 {
                    fabric.send(Cycle::new(cy), NodeId((i % 8) as u16), NodeId(8 + (i % 4) as u16), i);
                    cy += 1;
                    fabric.tick(Cycle::new(cy));
                    for n in 0..12u16 {
                        let _ = fabric.take_inbox(NodeId(n)).count();
                    }
                }
                fabric
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_schedule_10k", |b| {
        b.iter_batched(
            || DramBanks::new(DramParams::new(4, 120, 24).unwrap()),
            |mut dram| {
                for i in 0..10_000u64 {
                    dram.access(Cycle::new(i), BlockAddr(i % 64));
                }
                dram
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_protocol(c: &mut Criterion) {
    c.bench_function("protocol_ping_pong_64", |b| {
        let cfg = MachineConfig::builder().cores(2).build().unwrap();
        b.iter_batched(
            || ProtocolSandbox::new(&cfg),
            |mut sb| {
                for i in 0..64 {
                    let core = CoreId((i % 2) as u16);
                    sb.access_and_wait(core, AccessKind::Write, Addr(0x1000));
                }
                sb
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    group.bench_function("ocean_2c_tso", |b| {
        b.iter(|| {
            let params = WorkloadParams { threads: 2, scale: 2, seed: 1 };
            let spec = MachineSpec::baseline(ConsistencyModel::Tso)
                .with_machine(MachineConfig::builder().cores(2).build().unwrap());
            let mut m = Machine::new(&spec, WorkloadKind::OceanLike.build(&params));
            m.run(5_000_000)
        })
    });
    group.bench_function("oltp_4c_sc_spec", |b| {
        b.iter(|| {
            let params = WorkloadParams { threads: 4, scale: 2, seed: 1 };
            let spec = MachineSpec::baseline(ConsistencyModel::Sc)
                .with_machine(MachineConfig::builder().cores(4).build().unwrap())
                .with_spec(SpecConfig::on_demand());
            let mut m = Machine::new(&spec, WorkloadKind::OltpLike.build(&params));
            m.run(5_000_000)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_fabric,
    bench_dram,
    bench_protocol,
    bench_full_machine
);
criterion_main!(benches);
