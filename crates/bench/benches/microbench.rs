//! Microbenchmarks of the simulator substrate: cache array operations,
//! fabric throughput, DRAM scheduling, protocol transactions, and
//! whole-machine simulation rate.
//!
//! Self-contained timer harness (`cargo bench` — no external framework):
//! each benchmark is warmed up, then timed over enough iterations to
//! smooth scheduler noise, reporting mean wall time per iteration.

use std::hint::black_box;
use std::time::Instant;

use tenways_coherence::{sandbox::ProtocolSandbox, AccessKind};
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec, SpecConfig};
use tenways_mem::{CacheArray, CacheParams, DramBanks, DramParams, Replacement};
use tenways_noc::Fabric;
use tenways_sim::{Addr, BlockAddr, CoreId, Cycle, MachineConfig, NodeId};
use tenways_workloads::{WorkloadKind, WorkloadParams};

/// Times `f` over `iters` iterations after `warmup` untimed ones and
/// prints the mean per-iteration wall time.
fn bench(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per_iter = total / iters;
    println!("{name:<28} {per_iter:>12.2?}/iter   ({iters} iters, {total:.2?} total)");
}

fn bench_cache_array() {
    let params = CacheParams::new(128, 4, Replacement::Lru).unwrap();
    bench("cache_array_insert_get", 3, 200, || {
        let mut cache = CacheArray::<u64>::new(params);
        for i in 0..1024u64 {
            cache.insert(BlockAddr(i * 7 % 640), i);
            black_box(cache.get(BlockAddr(i * 3 % 640)));
        }
        black_box(&cache);
    });
}

fn bench_fabric() {
    bench("fabric_throughput_1k_msgs", 3, 100, || {
        let mut fabric = Fabric::<u32>::new(12, 6, 2, 2);
        let mut cy = 0u64;
        for i in 0..1_000u32 {
            fabric.send(
                Cycle::new(cy),
                NodeId((i % 8) as u16),
                NodeId(8 + (i % 4) as u16),
                i,
            );
            cy += 1;
            fabric.tick(Cycle::new(cy));
            for n in 0..12u16 {
                black_box(fabric.take_inbox(NodeId(n)).count());
            }
        }
        black_box(&fabric);
    });
}

fn bench_dram() {
    bench("dram_schedule_10k", 3, 100, || {
        let mut dram = DramBanks::new(DramParams::new(4, 120, 24).unwrap());
        for i in 0..10_000u64 {
            black_box(dram.access(Cycle::new(i), BlockAddr(i % 64)));
        }
        black_box(&dram);
    });
}

fn bench_protocol() {
    let cfg = MachineConfig::builder().cores(2).build().unwrap();
    bench("protocol_ping_pong_64", 3, 200, || {
        let mut sb = ProtocolSandbox::new(&cfg);
        for i in 0..64 {
            let core = CoreId((i % 2) as u16);
            black_box(sb.access_and_wait(core, AccessKind::Write, Addr(0x1000)));
        }
        black_box(&sb);
    });
}

fn bench_full_machine() {
    bench("machine/ocean_2c_tso", 1, 10, || {
        let params = WorkloadParams {
            threads: 2,
            scale: 2,
            seed: 1,
        };
        let spec = MachineSpec::baseline(ConsistencyModel::Tso)
            .with_machine(MachineConfig::builder().cores(2).build().unwrap());
        let mut m = Machine::new(&spec, WorkloadKind::OceanLike.build(&params));
        black_box(m.run(5_000_000));
    });
    bench("machine/oltp_4c_sc_spec", 1, 10, || {
        let params = WorkloadParams {
            threads: 4,
            scale: 2,
            seed: 1,
        };
        let spec = MachineSpec::baseline(ConsistencyModel::Sc)
            .with_machine(MachineConfig::builder().cores(4).build().unwrap())
            .with_spec(SpecConfig::on_demand());
        let mut m = Machine::new(&spec, WorkloadKind::OltpLike.build(&params));
        black_box(m.run(5_000_000));
    });
}

fn main() {
    println!("tenways substrate microbenchmarks (mean wall time per iteration)");
    println!("----------------------------------------------------------------");
    bench_cache_array();
    bench_fabric();
    bench_dram();
    bench_protocol();
    bench_full_machine();
}
