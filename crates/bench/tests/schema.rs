//! Contract tests for the machine-readable results: the JSON a benchmark
//! binary writes must validate against `results/schema/bench_rows.v1.json`,
//! and a serialized run record must validate against
//! `results/schema/run_record.v1.json`.

use std::path::{Path, PathBuf};
use std::process::Command;

use tenways_sim::json::{Json, ToJson};
use tenways_sim::validate_schema;
use tenways_waste::{Experiment, SimConfig};

fn repo_schema(name: &str) -> Json {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/schema")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()))
}

#[test]
fn run_record_matches_published_schema() {
    let cfg = SimConfig {
        threads: 2,
        scale: 1,
        ..SimConfig::default()
    };
    let record = Experiment::from_config(&cfg).unwrap().run().unwrap();
    let schema = repo_schema("run_record.v1.json");
    validate_schema(&record.to_json(), &schema).unwrap();
}

#[test]
fn serve_response_matches_published_schema() {
    let dir = std::env::temp_dir().join(format!("tenways-serve-schema-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = tenways_bench::SimService::new(tenways_bench::ServeOptions {
        workers: 1,
        cache_dir: dir.clone(),
        ..tenways_bench::ServeOptions::default()
    })
    .unwrap();
    let cfg = SimConfig {
        threads: 2,
        scale: 1,
        ..SimConfig::default()
    };
    let schema = repo_schema("serve_response.v2.json");
    let record_schema = repo_schema("run_record.v1.json");
    for _ in 0..2 {
        // Both the miss and the hit response must conform, and the
        // embedded record is itself a valid run_record.v1.
        let doc = service.submit(&cfg).unwrap().to_response_json();
        validate_schema(&doc, &schema).unwrap();
        validate_schema(doc.get("record").unwrap(), &record_schema).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_response_matches_published_schema() {
    let dir = std::env::temp_dir().join(format!("tenways-batch-schema-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = tenways_bench::SimService::new(tenways_bench::ServeOptions {
        workers: 2,
        cache_dir: dir.clone(),
        ..tenways_bench::ServeOptions::default()
    })
    .unwrap();
    let ok = SimConfig {
        threads: 2,
        scale: 1,
        ..SimConfig::default()
    };
    let dup = ok.clone();
    let other = SimConfig {
        threads: 2,
        scale: 2,
        ..SimConfig::default()
    };
    let bad = SimConfig {
        workload: "no-such-kernel".to_string(),
        ..ok.clone()
    };
    let report = service.submit_batch(
        &[
            ("a".to_string(), ok),
            ("a-again".to_string(), dup),
            ("b".to_string(), other),
            ("broken".to_string(), bad),
        ],
        None,
    );
    let doc = report.to_response_json();
    validate_schema(&doc, &repo_schema("serve_batch.v1.json")).unwrap();
    // Duplicate keys collapse, the bad config reports failed, and every
    // embedded record is itself a valid run_record.v1.
    assert_eq!(doc.get("total").and_then(Json::as_u64), Some(4));
    assert_eq!(doc.get("unique").and_then(Json::as_u64), Some(3));
    assert_eq!(doc.get("deduplicated").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(1));
    let record_schema = repo_schema("run_record.v1.json");
    for item in doc.get("results").and_then(Json::as_array).unwrap() {
        if let Some(record) = item.get("record") {
            validate_schema(record, &record_schema).unwrap();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn job_response_matches_published_schema() {
    let dir = std::env::temp_dir().join(format!("tenways-job-schema-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = tenways_bench::SimService::new(tenways_bench::ServeOptions {
        workers: 1,
        cache_dir: dir.clone(),
        ..tenways_bench::ServeOptions::default()
    })
    .unwrap();
    let cfg = SimConfig {
        threads: 2,
        scale: 1,
        ..SimConfig::default()
    };
    let schema = repo_schema("serve_job.v1.json");
    let record_schema = repo_schema("run_record.v1.json");

    // A finished job answers `done` with the embedded record.
    let answer = service.submit(&cfg).unwrap();
    let doc = service
        .job_status(&answer.key)
        .to_response_json(&answer.key);
    validate_schema(&doc, &schema).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    validate_schema(doc.get("record").unwrap(), &record_schema).unwrap();

    // A failed job answers `failed` with the containment error.
    let bad = SimConfig {
        workload: "no-such-kernel".to_string(),
        ..cfg
    };
    let bad_key = bad.cache_key();
    assert!(service.submit(&bad).is_err());
    let doc = service.job_status(&bad_key).to_response_json(&bad_key);
    validate_schema(&doc, &schema).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("failed"));
    assert!(doc.get("error").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cluster_stats_match_published_schema() {
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // Two live in-process backends behind a Router: the aggregated
    // /stats document is the serve_cluster_stats.v1 contract.
    let mut backends = Vec::new();
    for i in 0..2 {
        let dir =
            std::env::temp_dir().join(format!("tenways-cluster-schema-{i}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            tenways_bench::SimService::new(tenways_bench::ServeOptions {
                workers: 1,
                cache_dir: dir.clone(),
                ..tenways_bench::ServeOptions::default()
            })
            .unwrap(),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                tenways_bench::serve_http_shutdown(service, listener, None, false, shutdown)
            })
        };
        backends.push((addr, shutdown, Some(thread), dir));
    }
    let router = tenways_bench::Router::new(tenways_bench::RouterOptions {
        backends: backends.iter().map(|(addr, ..)| addr.clone()).collect(),
        ..tenways_bench::RouterOptions::default()
    })
    .unwrap();

    let doc = router.cluster_stats_json();
    validate_schema(
        &doc,
        &repo_schema(tenways_bench::SERVE_CLUSTER_STATS_SCHEMA),
    )
    .unwrap();
    assert_eq!(
        doc.get("cluster")
            .and_then(|c| c.get("backends_up"))
            .and_then(Json::as_u64),
        Some(2)
    );

    // A down backend embeds `stats: null` and the document still
    // validates (the schema must not demand live stats).
    backends[0].1.store(true, Ordering::Relaxed);
    if let Some(thread) = backends[0].2.take() {
        thread.join().unwrap().unwrap();
    }
    let doc = router.cluster_stats_json();
    validate_schema(
        &doc,
        &repo_schema(tenways_bench::SERVE_CLUSTER_STATS_SCHEMA),
    )
    .unwrap();

    drop(router);
    for (_, shutdown, thread, dir) in backends {
        shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = thread {
            thread.join().unwrap().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fig_binary_emits_schema_conforming_json() {
    let out_dir: PathBuf =
        std::env::temp_dir().join(format!("tenways-schema-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);

    let status = Command::new(env!("CARGO_BIN_EXE_fig1_waste_taxonomy"))
        .env("TENWAYS_FAST", "1")
        .env("TENWAYS_THREADS", "2")
        .env("TENWAYS_SCALE", "1")
        .env("TENWAYS_RESULTS_DIR", &out_dir)
        .env_remove("TENWAYS_CONFIG")
        .status()
        .expect("fig1 binary runs");
    assert!(status.success(), "fig1 exited with {status}");

    let path = out_dir.join("fig1_waste_taxonomy.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fig1 wrote no results at {}: {e}", path.display()));
    let doc = Json::parse(&text).expect("results file is valid JSON");
    let schema = repo_schema("bench_rows.v1.json");
    validate_schema(&doc, &schema).unwrap();

    // The run config embedded in the file reflects the environment the
    // binary actually ran under.
    let threads = doc
        .get("config")
        .and_then(|c| c.get("threads"))
        .and_then(Json::as_u64);
    assert_eq!(threads, Some(2));
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    assert!(!rows.is_empty(), "fig1 emitted no rows");

    let _ = std::fs::remove_dir_all(&out_dir);
}
