//! End-to-end tests for the grid sweep layer: failure containment,
//! degenerate grids, oversubscription, and checkpoint/resume determinism.

use std::path::PathBuf;

use tenways_bench::{run_sweep, SweepOptions, SweepParams, SweepSpec};
use tenways_sim::json::Json;

/// A fresh directory under the cargo-managed tmp dir for one test.
fn out_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_params(dir: PathBuf) -> SweepParams {
    SweepParams {
        out_dir: dir,
        verbose: false,
        ..SweepParams::default()
    }
}

const TINY_GRID: &str = "workload = \"lu\"\nscale = 1\nseed = 3\n\n[sweep]\nid = \"tiny\"\n\n[grid]\nthreads = [2, 3]\nseed = [1, 2, 3, 4]\nmodel = [\"sc\", \"tso\"]\n";

#[test]
fn gridless_spec_runs_the_base_config_once() {
    let spec =
        SweepSpec::from_toml_str("workload = \"lu\"\nscale = 1\nthreads = 2\n", "solo").unwrap();
    let report = run_sweep(&spec, &quiet_params(out_dir("solo"))).unwrap();
    assert_eq!((report.ok, report.failed, report.skipped), (1, 0, 0));
    let rows = report.doc.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("label").and_then(Json::as_str), Some("base"));
}

#[test]
fn empty_axis_writes_an_empty_document() {
    let spec =
        SweepSpec::from_toml_str("workload = \"lu\"\n\n[grid]\nthreads = []\n", "none").unwrap();
    let report = run_sweep(&spec, &quiet_params(out_dir("none"))).unwrap();
    assert_eq!((report.ok, report.failed, report.skipped), (0, 0, 0));
    assert!(report.all_ok(), "an empty sweep has nothing to fail");
    let rows = report.doc.get("rows").and_then(Json::as_array).unwrap();
    assert!(rows.is_empty());
    assert!(report.path.exists());
}

#[test]
fn grid_larger_than_parallelism_completes_every_row() {
    // 16 points against 2 workers: more jobs than workers by construction,
    // and on most hosts more than available_parallelism would grant each.
    let spec = SweepSpec::from_toml_str(TINY_GRID, "x").unwrap();
    let points = spec.points().unwrap();
    assert_eq!(points.len(), 16);
    let params = SweepParams {
        options: SweepOptions {
            workers: Some(2),
            ..SweepOptions::default()
        },
        ..quiet_params(out_dir("oversub"))
    };
    let report = run_sweep(&spec, &params).unwrap();
    assert_eq!((report.ok, report.failed, report.skipped), (16, 0, 0));
    let rows = report.doc.get("rows").and_then(Json::as_array).unwrap();
    for (row, point) in rows.iter().zip(&points) {
        assert_eq!(
            row.get("label").and_then(Json::as_str),
            Some(point.label.as_str()),
            "rows stay in grid expansion order"
        );
        assert_eq!(row.get("status").and_then(Json::as_str), Some("ok"));
        assert!(
            row.get("sim_ms").and_then(Json::as_f64).is_some(),
            "completed rows report their host wall time"
        );
        assert!(
            row.get("sim_cycles_per_sec")
                .and_then(Json::as_f64)
                .is_some(),
            "completed rows report simulation throughput"
        );
    }
}

#[test]
fn a_failing_point_costs_only_its_own_row() {
    // threads = 0 passes config typing but fails when the experiment
    // starts — the injected per-row failure.
    let grid = "workload = \"lu\"\nscale = 1\n\n[sweep]\nid = \"failsoft\"\n\n[grid]\nthreads = [2, 3, 4, 0]\n";
    let spec = SweepSpec::from_toml_str(grid, "x").unwrap();
    let dir = out_dir("failsoft");
    let report = run_sweep(&spec, &quiet_params(dir.clone())).unwrap();
    assert_eq!((report.ok, report.failed, report.skipped), (3, 1, 0));
    let rows = report.doc.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 4, "failed points still get a row");
    let failed = &rows[3];
    assert_eq!(failed.get("status").and_then(Json::as_str), Some("failed"));
    assert!(failed.get("error").and_then(Json::as_str).is_some());
    assert!(failed.get("cycles").is_none(), "no fabricated metrics");
    for row in &rows[..3] {
        assert_eq!(row.get("status").and_then(Json::as_str), Some("ok"));
        assert!(row.get("cycles").and_then(Json::as_u64).is_some());
    }
    // The checkpoint survives a partial sweep so a rerun can resume.
    assert!(dir.join("failsoft.partial.json").exists());
}

/// Renders a sweep document with its per-row host timing fields zeroed.
/// `sim_ms` / `sim_cycles_per_sec` measure wall-clock on *this* host during
/// *this* run, so they legitimately differ between two runs of the same
/// sweep; everything else must not.
fn masked_timing(bytes: &[u8]) -> String {
    let text = std::str::from_utf8(bytes).expect("sweep doc is UTF-8");
    let mut doc = Json::parse(text).expect("sweep doc parses");
    if let Json::Obj(pairs) = &mut doc {
        if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(k, _)| k == "rows") {
            for row in rows {
                if let Json::Obj(fields) = row {
                    for (key, value) in fields.iter_mut() {
                        if key == "sim_ms" || key == "sim_cycles_per_sec" {
                            *value = Json::F64(0.0);
                        }
                    }
                }
            }
        }
    }
    doc.pretty()
}

#[test]
fn resume_from_checkpoint_reproduces_the_uninterrupted_run_byte_for_byte() {
    let spec = SweepSpec::from_toml_str(TINY_GRID, "x").unwrap();

    // Reference: one uninterrupted run.
    let full_dir = out_dir("resume_full");
    run_sweep(&spec, &quiet_params(full_dir.clone())).unwrap();
    let reference = std::fs::read(full_dir.join("tiny.json")).unwrap();

    // Interrupted: a single worker allowed only 5 fresh starts, then a
    // resume that picks up the other 11 from the checkpoint.
    let cut_dir = out_dir("resume_cut");
    let interrupted = SweepParams {
        options: SweepOptions {
            workers: Some(1),
            max_jobs: Some(5),
            ..SweepOptions::default()
        },
        ..quiet_params(cut_dir.clone())
    };
    let report = run_sweep(&spec, &interrupted).unwrap();
    assert_eq!((report.ok, report.failed, report.skipped), (5, 0, 11));
    assert!(cut_dir.join("tiny.partial.json").exists());

    let report = run_sweep(&spec, &quiet_params(cut_dir.clone())).unwrap();
    assert_eq!((report.ok, report.failed, report.skipped), (16, 0, 0));
    assert_eq!(report.reused, 5, "checkpointed rows must not rerun");
    let resumed = std::fs::read(cut_dir.join("tiny.json")).unwrap();
    assert_eq!(
        masked_timing(&resumed),
        masked_timing(&reference),
        "resumed sweep must be byte-identical to the uninterrupted run \
         (modulo host wall-clock fields)"
    );
    assert!(
        !cut_dir.join("tiny.partial.json").exists(),
        "a fully-ok sweep removes its checkpoint"
    );
}

#[test]
fn fresh_run_ignores_a_stale_checkpoint() {
    let spec = SweepSpec::from_toml_str(TINY_GRID, "x").unwrap();
    let dir = out_dir("fresh");
    let interrupted = SweepParams {
        options: SweepOptions {
            workers: Some(1),
            max_jobs: Some(3),
            ..SweepOptions::default()
        },
        ..quiet_params(dir.clone())
    };
    run_sweep(&spec, &interrupted).unwrap();
    let no_resume = SweepParams {
        resume: false,
        ..quiet_params(dir.clone())
    };
    let report = run_sweep(&spec, &no_resume).unwrap();
    assert_eq!(report.reused, 0, "--fresh reruns every point");
    assert_eq!(report.ok, 16);
}
