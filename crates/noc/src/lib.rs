//! Interconnect substrate for `tenways`: a payload-generic crossbar
//! [`Fabric`] connecting cores, directory banks and any future endpoints.
//!
//! The fabric models the three first-order properties of an on-chip network
//! that the evaluation cares about:
//!
//! 1. **Latency** — every message takes a fixed one-way latency (a crossbar /
//!    low-diameter NoC abstraction; per-hop topologies only shift constants).
//! 2. **Bandwidth** — each endpoint may *inject* at most `inject_bw` and
//!    *accept* at most `accept_bw` messages per cycle; excess messages queue
//!    and their queueing delay is accounted (the "NoC contention" waste
//!    category).
//! 3. **Point-to-point ordering** — messages between the same (source,
//!    destination) pair are delivered in injection order. The coherence
//!    protocol relies on this invariant.
//!
//! The payload type is generic so this crate stays independent of the
//! coherence protocol that rides on it.
//!
//! # Example
//!
//! ```rust
//! use tenways_noc::Fabric;
//! use tenways_sim::{Cycle, NodeId};
//!
//! let mut fabric: Fabric<&str> = Fabric::new(4, 6, 1, 1);
//! fabric.send(Cycle::ZERO, NodeId(0), NodeId(3), "hello");
//! for cy in 1..=7 {
//!     fabric.tick(cy.into());
//! }
//! let delivered: Vec<_> = fabric.take_inbox(tenways_sim::NodeId(3)).collect();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, VecDeque};

use tenways_sim::trace::{TraceCategory, Tracer, NOC_TID};
use tenways_sim::{Cycle, NodeId, StatId, StatSet};

/// Physical organization of the interconnect: determines per-message
/// latency as a function of the (source, destination) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Single-stage crossbar: every pair is `latency` apart.
    Crossbar {
        /// One-way latency in cycles.
        latency: u64,
    },
    /// 2-D mesh with XY routing: nodes are laid out row-major on a
    /// `width`-wide grid; latency is `router_latency + hop_latency *
    /// manhattan_distance(src, dst)`.
    Mesh {
        /// Grid width (nodes per row).
        width: usize,
        /// Per-hop link latency.
        hop_latency: u64,
        /// Fixed injection/ejection overhead.
        router_latency: u64,
    },
}

impl Topology {
    /// One-way latency between two nodes.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> u64 {
        match *self {
            Topology::Crossbar { latency } => latency,
            Topology::Mesh {
                width,
                hop_latency,
                router_latency,
            } => {
                let w = width.max(1);
                let (sx, sy) = (src.index() % w, src.index() / w);
                let (dx, dy) = (dst.index() % w, dst.index() / w);
                let hops = sx.abs_diff(dx) + sy.abs_diff(dy);
                router_latency + hop_latency * hops as u64
            }
        }
    }

    /// Worst-case latency across `nodes` endpoints.
    pub fn diameter_latency(&self, nodes: usize) -> u64 {
        (0..nodes as u16)
            .flat_map(|a| (0..nodes as u16).map(move |b| (a, b)))
            .map(|(a, b)| self.latency(NodeId(a), NodeId(b)))
            .max()
            .unwrap_or(0)
    }

    /// Smallest latency across any *distinct* pair of `nodes` endpoints:
    /// the conservative lookahead window for epoch-parallel scheduling. A
    /// message injected at cycle `t` cannot be delivered before
    /// `t + min_latency`, so shards that interact only through the fabric
    /// can free-run `min_latency` cycles between boundary exchanges.
    pub fn min_latency(&self, nodes: usize) -> u64 {
        (0..nodes as u16)
            .flat_map(|a| (0..nodes as u16).map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| self.latency(NodeId(a), NodeId(b)))
            .min()
            .unwrap_or(0)
    }
}

/// A message travelling through the fabric, carrying its timing provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Cycle at which the sender handed the message to the fabric.
    pub sent: Cycle,
    /// Cycle at which the message was delivered into the inbox.
    pub delivered: Cycle,
    /// The protocol payload.
    pub payload: P,
}

impl<P> Envelope<P> {
    /// Total fabric delay experienced, including queueing.
    pub fn delay(&self) -> u64 {
        self.delivered - self.sent
    }
}

#[derive(Debug)]
struct InFlight<P> {
    deliver_at: Cycle,
    env: Envelope<P>,
}

/// A flight-queue insert captured while the fabric is in staging mode
/// (see [`Fabric::set_staging`]): the envelope plus the two keys that
/// order it against inserts staged by other shards. Sorting a merged
/// batch by `(inject_at, src)` — keeping the staged (per-source FIFO)
/// order for ties — reproduces the order a sequential injection scan
/// would have inserted them in.
#[derive(Debug)]
pub struct Staged<P> {
    /// Cycle the injection stage picked the message up.
    pub inject_at: Cycle,
    /// Cycle the message becomes due for delivery.
    pub deliver_at: Cycle,
    /// The message itself (`delivered` still unset).
    pub env: Envelope<P>,
}

/// A latency/bandwidth-modeled crossbar connecting `nodes` endpoints.
///
/// See the [crate docs](crate) for the modeled properties. All state is
/// deterministic: injection scans sources in index order and each queue is
/// FIFO, so a run is reproducible tick-for-tick.
#[derive(Debug)]
pub struct Fabric<P> {
    topology: Topology,
    inject_bw: usize,
    accept_bw: usize,
    /// Messages waiting at their source for an injection slot.
    inject_q: Vec<VecDeque<(Cycle, NodeId, P)>>,
    /// Messages in flight, per destination, ordered by deliver_at.
    flight: Vec<VecDeque<InFlight<P>>>,
    /// Delivered messages awaiting pickup by the destination component.
    inbox: Vec<VecDeque<Envelope<P>>>,
    /// Total messages across all `inject_q`s, so an idle tick can skip the
    /// per-source injection scan entirely.
    pending_inject: usize,
    /// Total messages across all `flight` queues, so an idle tick can skip
    /// the per-destination delivery scan entirely.
    in_flight: usize,
    /// Total messages across all `inbox` queues, so quiescence checks and
    /// `next_event` never scan the per-node inboxes.
    inbox_count: usize,
    /// Destinations with a non-empty flight queue, kept sorted so the
    /// delivery stage visits only active endpoints in deterministic
    /// (ascending) index order.
    active_dsts: BTreeSet<u32>,
    /// Reusable buffer for iterating `active_dsts` while mutating it.
    scratch_dsts: Vec<u32>,
    /// Cached minimum `deliver_at` across every flight-queue head
    /// (`Cycle::NEVER` when nothing is in flight): min-updated on insert,
    /// recomputed over the active heads after each delivery stage.
    earliest_deliver: Cycle,
    /// When set, the injection stage records would-be flight inserts into
    /// `staged` instead of the flight queues (epoch-parallel mode).
    staging: bool,
    /// Inserts captured while staging, in injection order.
    staged: Vec<Staged<P>>,
    last_tick: Cycle,
    stats: StatSet,
    ids: FabricStatIds,
    tracer: Tracer,
}

/// Cached [`StatId`] handles for the per-message hot path; bumping through
/// these is a slot index instead of a string-keyed map lookup.
#[derive(Debug, Clone, Copy)]
struct FabricStatIds {
    sent: StatId,
    delivered: StatId,
    total_delay: StatId,
    inject_queue: StatId,
    accept_queue: StatId,
}

impl FabricStatIds {
    fn intern(stats: &mut StatSet) -> Self {
        FabricStatIds {
            sent: stats.id("noc.sent"),
            delivered: stats.id("noc.delivered"),
            total_delay: stats.id("noc.total_delay_cycles"),
            inject_queue: stats.id("noc.inject_queue_cycles"),
            accept_queue: stats.id("noc.accept_queue_cycles"),
        }
    }
}

impl<P> Fabric<P> {
    /// Creates a fabric with `nodes` endpoints, one-way `latency`, and
    /// per-endpoint `inject_bw` / `accept_bw` messages per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `inject_bw` or `accept_bw` is zero.
    pub fn new(nodes: usize, latency: u64, inject_bw: usize, accept_bw: usize) -> Self {
        Fabric::with_topology(nodes, Topology::Crossbar { latency }, inject_bw, accept_bw)
    }

    /// Creates a fabric with an explicit [`Topology`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `inject_bw` or `accept_bw` is zero.
    pub fn with_topology(
        nodes: usize,
        topology: Topology,
        inject_bw: usize,
        accept_bw: usize,
    ) -> Self {
        assert!(nodes > 0, "fabric needs at least one node");
        assert!(
            inject_bw > 0 && accept_bw > 0,
            "bandwidths must be non-zero"
        );
        let mut stats = StatSet::new();
        let ids = FabricStatIds::intern(&mut stats);
        Fabric {
            topology,
            inject_bw,
            accept_bw,
            inject_q: (0..nodes).map(|_| VecDeque::new()).collect(),
            flight: (0..nodes).map(|_| VecDeque::new()).collect(),
            inbox: (0..nodes).map(|_| VecDeque::new()).collect(),
            pending_inject: 0,
            in_flight: 0,
            inbox_count: 0,
            active_dsts: BTreeSet::new(),
            scratch_dsts: Vec::new(),
            earliest_deliver: Cycle::NEVER,
            staging: false,
            staged: Vec::new(),
            last_tick: Cycle::ZERO,
            stats,
            ids,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an event tracer; queueing delays are recorded as spans on
    /// the fabric's timeline row.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Builds a fabric sized for a [`tenways_sim::MachineConfig`]; honors
    /// the config's mesh flag (grid width = ceil(sqrt(nodes)), per-hop
    /// latency derived from the crossbar latency so diameters are
    /// comparable).
    pub fn for_machine(cfg: &tenways_sim::MachineConfig) -> Self {
        let nodes = cfg.node_count();
        let topology = if cfg.noc_mesh {
            let width = (nodes as f64).sqrt().ceil() as usize;
            Topology::Mesh {
                width: width.max(1),
                hop_latency: (cfg.noc_latency / 2).max(1),
                router_latency: 2,
            }
        } else {
            Topology::Crossbar {
                latency: cfg.noc_latency,
            }
        };
        Fabric::with_topology(nodes, topology, cfg.noc_inject_bw, cfg.noc_accept_bw)
    }

    /// The configured topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.inbox.len()
    }

    /// Hands a message to the fabric at time `now`.
    ///
    /// The message leaves `src`'s injection queue subject to the injection
    /// bandwidth (starting with the *next* [`tick`](Self::tick)) and is
    /// delivered `latency` cycles after injection, subject to the acceptance
    /// bandwidth at `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, payload: P) {
        assert!(dst.index() < self.inbox.len(), "dst {dst} out of range");
        self.stats.bump_id(self.ids.sent);
        self.inject_q[src.index()].push_back((now, dst, payload));
        self.pending_inject += 1;
    }

    /// Advances the fabric to `now`: injects up to `inject_bw` messages per
    /// source, then delivers due messages (up to `accept_bw` per destination)
    /// into inboxes.
    ///
    /// Must be called once per cycle with a nondecreasing `now`. Returns
    /// `true` if any message moved (was injected or delivered) this cycle.
    pub fn tick(&mut self, now: Cycle) -> bool {
        self.tick_inner(now, None)
    }

    /// Like [`tick`](Self::tick), but also appends each destination that
    /// received at least one delivery this cycle to `woken` (ascending
    /// node order, no duplicates). The wake scheduler uses this to rouse
    /// exactly the endpoints whose inboxes just became non-empty.
    pub fn tick_observed(&mut self, now: Cycle, woken: &mut Vec<NodeId>) -> bool {
        self.tick_inner(now, Some(woken))
    }

    fn tick_inner(&mut self, now: Cycle, mut woken: Option<&mut Vec<NodeId>>) -> bool {
        debug_assert!(now >= self.last_tick, "fabric ticked backwards");
        self.last_tick = now;
        let mut moved = false;

        // Injection stage — skipped outright when nothing is queued.
        if self.pending_inject > 0 {
            for src in 0..self.inject_q.len() {
                for _ in 0..self.inject_bw {
                    let Some((sent, dst, payload)) = self.inject_q[src].pop_front() else {
                        break;
                    };
                    self.pending_inject -= 1;
                    moved = true;
                    let inject_wait = now - sent;
                    if inject_wait > 1 {
                        // A message sent at cycle t naturally injects at t+1;
                        // anything beyond that is contention.
                        self.stats.add_id(self.ids.inject_queue, inject_wait - 1);
                        self.tracer.span(
                            now,
                            inject_wait - 1,
                            NOC_TID,
                            TraceCategory::Noc,
                            "noc.inject_queue",
                            src as u64,
                        );
                    }
                    let deliver_at = now.after(self.topology.latency(NodeId(src as u16), dst));
                    let env = Envelope {
                        src: NodeId(src as u16),
                        dst,
                        sent,
                        delivered: Cycle::NEVER,
                        payload,
                    };
                    if self.staging {
                        // Epoch-parallel mode: defer the insert to the
                        // epoch boundary so shards can merge their
                        // inserts in canonical order. The delivery cannot
                        // be due inside the current epoch (`deliver_at >=
                        // now + min_latency`), so deferring is invisible
                        // to this shard's own delivery stage.
                        self.staged.push(Staged {
                            inject_at: now,
                            deliver_at,
                            env,
                        });
                        continue;
                    }
                    // Insert keeping the queue sorted by deliver time (stable:
                    // equal times keep injection order, which preserves the
                    // per-pair FIFO guarantee — same-pair messages have equal
                    // latency and monotone injection times).
                    self.active_dsts.insert(dst.index() as u32);
                    self.earliest_deliver = self.earliest_deliver.min(deliver_at);
                    let q = &mut self.flight[dst.index()];
                    let pos = q.partition_point(|f| f.deliver_at <= deliver_at);
                    q.insert(pos, InFlight { deliver_at, env });
                    self.in_flight += 1;
                }
            }
        }

        // Delivery stage — visits only destinations with flight traffic,
        // skipped outright when nothing is due yet.
        if self.in_flight > 0 && self.earliest_deliver <= now {
            let mut scratch = std::mem::take(&mut self.scratch_dsts);
            scratch.clear();
            scratch.extend(self.active_dsts.iter().copied());
            let mut earliest = Cycle::NEVER;
            for &dst32 in &scratch {
                let dst = dst32 as usize;
                let mut accepted = 0;
                while accepted < self.accept_bw {
                    match self.flight[dst].front() {
                        Some(head) if head.deliver_at <= now => {}
                        _ => break,
                    }
                    let head = self.flight[dst].pop_front().expect("peeked above");
                    self.in_flight -= 1;
                    moved = true;
                    let accept_wait = now - head.deliver_at;
                    if accept_wait > 0 {
                        self.stats.add_id(self.ids.accept_queue, accept_wait);
                        self.tracer.span(
                            now,
                            accept_wait,
                            NOC_TID,
                            TraceCategory::Noc,
                            "noc.accept_queue",
                            dst as u64,
                        );
                    }
                    let mut env = head.env;
                    env.delivered = now;
                    self.stats.bump_id(self.ids.delivered);
                    self.stats.add_id(self.ids.total_delay, env.delay());
                    self.inbox[dst].push_back(env);
                    self.inbox_count += 1;
                    accepted += 1;
                }
                if accepted > 0 {
                    if let Some(w) = woken.as_deref_mut() {
                        w.push(NodeId(dst as u16));
                    }
                }
                match self.flight[dst].front() {
                    Some(head) => earliest = earliest.min(head.deliver_at),
                    None => {
                        self.active_dsts.remove(&dst32);
                    }
                }
            }
            self.earliest_deliver = earliest;
            self.scratch_dsts = scratch;
        }
        moved
    }

    /// Earliest future cycle at which this fabric can make progress, or
    /// `None` if it is drained (nothing queued, in flight, or awaiting
    /// pickup). Messages waiting for injection or pickup mean the very next
    /// cycle may act, so they report `now + 1`. O(1): counters plus the
    /// incrementally-maintained earliest in-flight `deliver_at`.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.pending_inject > 0 || self.inbox_count > 0 {
            return Some(now.after(1));
        }
        if self.in_flight > 0 {
            return Some(self.earliest_deliver.max(now.after(1)));
        }
        None
    }

    /// Replays `gap` skipped quiescent cycles following a tick at `now`
    /// (the unified `skip_idle(now, gap)` contract: `now` is the cycle of
    /// the last observed no-progress tick, the replay covers
    /// `now+1 ..= now+gap`).
    ///
    /// A fabric tick that moves no message mutates nothing except the
    /// monotonicity watermark, so the bulk replay is just that watermark.
    pub fn skip_idle(&mut self, now: Cycle, gap: u64) {
        debug_assert!(now >= self.last_tick, "fabric skipped backwards");
        self.last_tick = now.after(gap);
    }

    /// Switches deferred-insert (staging) mode on or off. While staging,
    /// the injection stage records would-be flight inserts into a side
    /// buffer (drained by [`take_staged`](Self::take_staged)) instead of
    /// the flight queues; bandwidth throttling, queueing statistics and
    /// delivery of already-inserted messages behave as usual.
    pub fn set_staging(&mut self, staging: bool) {
        self.staging = staging;
    }

    /// Drains the inserts captured while staging, in injection order
    /// (ascending inject cycle; within a cycle, ascending source node).
    pub fn take_staged(&mut self) -> Vec<Staged<P>> {
        std::mem::take(&mut self.staged)
    }

    /// Applies staged flight-queue inserts — typically captured by other
    /// shards' views — to this fabric. The caller supplies the batch in
    /// canonical sequential order (sorted by `(inject_at, src)`, ties in
    /// staged order), so the flight queues end up identical to a
    /// sequential run's. Refreshes the cached delivery minimum, so a
    /// later [`next_event`](Self::next_event) sees the absorbed messages:
    /// without that refresh a shard could sleep straight past a
    /// cross-shard delivery (the stale-min hazard).
    pub fn absorb_staged(&mut self, batch: impl IntoIterator<Item = Staged<P>>) {
        for st in batch {
            let dst = st.env.dst;
            self.active_dsts.insert(dst.index() as u32);
            self.earliest_deliver = self.earliest_deliver.min(st.deliver_at);
            let q = &mut self.flight[dst.index()];
            let pos = q.partition_point(|f| f.deliver_at <= st.deliver_at);
            q.insert(
                pos,
                InFlight {
                    deliver_at: st.deliver_at,
                    env: st.env,
                },
            );
            self.in_flight += 1;
        }
    }

    /// Splits the fabric into `shards` per-shard views for the
    /// epoch-parallel scheduler. Every view spans all nodes — component
    /// code needs no re-indexing and can inject toward any destination —
    /// but only the queues of the nodes `owner` assigns to a view carry
    /// state, and its counters and cached delivery minimum cover exactly
    /// those. View 0 inherits the accumulated statistics; the others
    /// start fresh sets, merged back by key in
    /// [`recompose`](Self::recompose).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `owner` maps a node out of range.
    pub fn split(mut self, shards: usize, owner: impl Fn(NodeId) -> usize) -> Vec<Fabric<P>> {
        assert!(shards > 0, "need at least one shard");
        debug_assert!(self.staged.is_empty(), "split with staged inserts pending");
        let nodes = self.nodes();
        let mut views: Vec<Fabric<P>> = (0..shards)
            .map(|_| {
                let mut v =
                    Fabric::with_topology(nodes, self.topology, self.inject_bw, self.accept_bw);
                v.last_tick = self.last_tick;
                v.tracer = self.tracer.clone();
                v
            })
            .collect();
        for n in 0..nodes {
            let s = owner(NodeId(n as u16));
            assert!(s < shards, "owner({n}) = {s} out of range");
            let v = &mut views[s];
            v.pending_inject += self.inject_q[n].len();
            v.inject_q[n] = std::mem::take(&mut self.inject_q[n]);
            v.in_flight += self.flight[n].len();
            v.flight[n] = std::mem::take(&mut self.flight[n]);
            v.inbox_count += self.inbox[n].len();
            v.inbox[n] = std::mem::take(&mut self.inbox[n]);
            if let Some(head) = v.flight[n].front() {
                v.active_dsts.insert(n as u32);
                v.earliest_deliver = v.earliest_deliver.min(head.deliver_at);
            }
        }
        // View 0 inherits the accumulated statistics. The cached stat ids
        // stay valid: every fabric interns the same keys first, in the
        // same order, so the slot indices agree across sets.
        views[0].stats = self.stats;
        views
    }

    /// Reassembles one fabric from per-shard views produced by
    /// [`split`](Self::split). Node queues are disjoint by construction
    /// (each node's state lives only in its owner's view); statistics are
    /// merged by key.
    pub fn recompose(views: Vec<Fabric<P>>) -> Fabric<P> {
        let mut views = views.into_iter();
        let mut out = views.next().expect("recompose needs at least one view");
        out.staging = false;
        debug_assert!(out.staged.is_empty(), "recompose with staged inserts");
        for mut v in views {
            debug_assert!(v.staged.is_empty(), "recompose with staged inserts");
            for n in 0..out.nodes() {
                if !v.inject_q[n].is_empty() {
                    debug_assert!(out.inject_q[n].is_empty(), "overlapping views");
                    out.pending_inject += v.inject_q[n].len();
                    out.inject_q[n] = std::mem::take(&mut v.inject_q[n]);
                }
                if !v.flight[n].is_empty() {
                    debug_assert!(out.flight[n].is_empty(), "overlapping views");
                    out.in_flight += v.flight[n].len();
                    out.flight[n] = std::mem::take(&mut v.flight[n]);
                    out.active_dsts.insert(n as u32);
                    let head = out.flight[n].front().expect("non-empty");
                    out.earliest_deliver = out.earliest_deliver.min(head.deliver_at);
                }
                if !v.inbox[n].is_empty() {
                    debug_assert!(out.inbox[n].is_empty(), "overlapping views");
                    out.inbox_count += v.inbox[n].len();
                    out.inbox[n] = std::mem::take(&mut v.inbox[n]);
                }
            }
            out.last_tick = out.last_tick.max(v.last_tick);
            out.stats.merge(&v.stats);
        }
        out
    }

    /// Drains all delivered messages waiting at `node`, in delivery order.
    pub fn take_inbox(&mut self, node: NodeId) -> impl Iterator<Item = Envelope<P>> + '_ {
        self.inbox_count -= self.inbox[node.index()].len();
        self.inbox[node.index()].drain(..)
    }

    /// Number of delivered-but-unprocessed messages at `node`.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inbox[node.index()].len()
    }

    /// True if no message is queued, in flight, or awaiting pickup anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.pending_inject == 0 && self.in_flight == 0 && self.inbox_count == 0
    }

    /// Fabric-wide statistics (sent/delivered counts, queueing delays).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// One-way latency between a node pair under the configured topology.
    pub fn latency_between(&self, src: NodeId, dst: NodeId) -> u64 {
        self.topology.latency(src, dst)
    }

    /// One-way latency parameter (crossbar) or router latency (mesh).
    pub fn latency(&self) -> u64 {
        match self.topology {
            Topology::Crossbar { latency } => latency,
            Topology::Mesh { router_latency, .. } => router_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(latency: u64, inj: usize, acc: usize) -> Fabric<u32> {
        Fabric::new(4, latency, inj, acc)
    }

    /// Runs the fabric until quiescent, returning (cycle, envelope) deliveries.
    fn drain_all(f: &mut Fabric<u32>, start: u64, horizon: u64) -> Vec<(u64, Envelope<u32>)> {
        let mut out = Vec::new();
        for cy in start..start + horizon {
            let now = Cycle::new(cy);
            f.tick(now);
            for n in 0..f.nodes() {
                for env in f.take_inbox(NodeId(n as u16)) {
                    out.push((cy, env));
                }
            }
            if f.is_quiescent() {
                break;
            }
        }
        out
    }

    #[test]
    fn delivers_after_latency() {
        let mut f = fabric(6, 1, 1);
        f.send(Cycle::ZERO, NodeId(0), NodeId(1), 7);
        let got = drain_all(&mut f, 1, 100);
        assert_eq!(got.len(), 1);
        // Injected at tick 1 (first tick after send), delivered 6 later.
        assert_eq!(got[0].0, 7);
        assert_eq!(got[0].1.payload, 7);
        assert_eq!(got[0].1.src, NodeId(0));
    }

    #[test]
    fn point_to_point_order_preserved() {
        let mut f = fabric(3, 2, 2);
        for i in 0..10 {
            f.send(Cycle::ZERO, NodeId(0), NodeId(2), i);
        }
        let got = drain_all(&mut f, 1, 100);
        let payloads: Vec<u32> = got.iter().map(|(_, e)| e.payload).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn inject_bandwidth_throttles() {
        let mut f = fabric(1, 1, 4);
        for i in 0..4 {
            f.send(Cycle::ZERO, NodeId(0), NodeId(1), i);
        }
        let got = drain_all(&mut f, 1, 100);
        // One injection per cycle => deliveries at consecutive cycles.
        let cycles: Vec<u64> = got.iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5]);
        assert!(f.stats().get("noc.inject_queue_cycles") > 0);
    }

    #[test]
    fn accept_bandwidth_throttles() {
        let mut f = fabric(1, 4, 1);
        // Four different sources converge on node 3 in the same cycle.
        for s in 0..4u16 {
            f.send(Cycle::ZERO, NodeId(s), NodeId(3), u32::from(s));
        }
        let got = drain_all(&mut f, 1, 100);
        let cycles: Vec<u64> = got.iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5]);
        assert!(f.stats().get("noc.accept_queue_cycles") > 0);
    }

    #[test]
    fn delay_accounts_queueing() {
        let mut f = fabric(2, 1, 1);
        f.send(Cycle::ZERO, NodeId(0), NodeId(1), 1);
        f.send(Cycle::ZERO, NodeId(0), NodeId(1), 2);
        let got = drain_all(&mut f, 1, 100);
        assert!(got[1].1.delay() > got[0].1.delay());
    }

    #[test]
    fn quiescence_detection() {
        let mut f = fabric(4, 1, 1);
        assert!(f.is_quiescent());
        f.send(Cycle::ZERO, NodeId(1), NodeId(0), 9);
        assert!(!f.is_quiescent());
        drain_all(&mut f, 1, 100);
        assert!(f.is_quiescent());
    }

    #[test]
    fn stats_count_messages() {
        let mut f = fabric(1, 2, 2);
        for i in 0..5u64 {
            f.send(Cycle::new(i), NodeId(0), NodeId(1), i as u32);
            f.tick(Cycle::new(i));
        }
        drain_all(&mut f, 5, 50);
        assert_eq!(f.stats().get("noc.sent"), 5);
        assert_eq!(f.stats().get("noc.delivered"), 5);
    }

    #[test]
    fn next_event_tracks_message_lifecycle() {
        let mut f = fabric(6, 1, 1);
        assert_eq!(
            f.next_event(Cycle::ZERO),
            None,
            "empty fabric has no events"
        );
        f.send(Cycle::ZERO, NodeId(0), NodeId(1), 7);
        // Queued for injection: next cycle may act.
        assert_eq!(f.next_event(Cycle::ZERO), Some(Cycle::new(1)));
        assert!(f.tick(Cycle::new(1)), "injection counts as progress");
        // In flight, due at 1 + 6 = 7.
        assert_eq!(f.next_event(Cycle::new(1)), Some(Cycle::new(7)));
        assert!(!f.tick(Cycle::new(2)), "nothing moves before delivery");
        // Skip the quiescent cycles 3..=6 in bulk (unified contract:
        // `skip_idle(now, gap)` replays `now+1 ..= now+gap`).
        f.skip_idle(Cycle::new(2), 4);
        assert!(f.tick(Cycle::new(7)), "delivery counts as progress");
        // Delivered but unclaimed: still reports an immediate event.
        assert_eq!(f.next_event(Cycle::new(7)), Some(Cycle::new(8)));
        let _ = f.take_inbox(NodeId(1)).count();
        assert_eq!(f.next_event(Cycle::new(7)), None);
        assert!(f.is_quiescent());
    }

    /// The incrementally-maintained earliest-`deliver_at` minimum must
    /// track inserts (min-updates), pops (recompute over remaining
    /// heads), and skipped gaps — `next_event` never rescans the flight
    /// queues, so any drift here would desynchronize the wake scheduler.
    #[test]
    fn incremental_min_tracks_insert_pop_and_skip() {
        let mut f = fabric(1, 4, 4);
        // Two messages to different destinations, staggered deadlines.
        f.send(Cycle::ZERO, NodeId(0), NodeId(2), 20);
        f.tick(Cycle::new(1)); // injected, due at 2
        assert_eq!(f.inbox_len(NodeId(2)), 0, "injected this cycle, not due");
        assert_eq!(f.next_event(Cycle::new(1)), Some(Cycle::new(2)));
        // Insert a second flight with a *later* source while the first is
        // still pending: the cached min must stay at the earlier deadline.
        f.send(Cycle::new(1), NodeId(1), NodeId(3), 30);
        f.skip_idle(Cycle::new(1), 0);
        f.tick(Cycle::new(2)); // delivers to 2, injects the second
        assert_eq!(f.inbox_len(NodeId(2)), 1);
        let _ = f.take_inbox(NodeId(2)).count();
        // Only the second message remains in flight, due at 3.
        assert_eq!(f.next_event(Cycle::new(2)), Some(Cycle::new(3)));
        f.tick(Cycle::new(3));
        assert_eq!(f.inbox_len(NodeId(3)), 1);
        // Pickup pending: still an immediate event; drained: none.
        assert_eq!(f.next_event(Cycle::new(3)), Some(Cycle::new(4)));
        let _ = f.take_inbox(NodeId(3)).count();
        assert_eq!(f.next_event(Cycle::new(3)), None);
        assert!(f.is_quiescent());
        // Skip a long idle stretch, then reuse the fabric: the min must
        // rebuild from scratch after having been fully drained.
        f.skip_idle(Cycle::new(3), 97);
        f.send(Cycle::new(100), NodeId(2), NodeId(0), 40);
        f.tick(Cycle::new(101));
        assert_eq!(f.next_event(Cycle::new(101)), Some(Cycle::new(102)));
        f.tick(Cycle::new(102));
        assert_eq!(f.take_inbox(NodeId(0)).next().unwrap().payload, 40);
    }

    /// `tick_observed` reports exactly the destinations whose inboxes
    /// received a delivery, in ascending node order.
    #[test]
    fn tick_observed_reports_delivered_destinations() {
        let mut f = fabric(2, 4, 4);
        f.send(Cycle::ZERO, NodeId(0), NodeId(3), 1);
        f.send(Cycle::ZERO, NodeId(1), NodeId(2), 2);
        f.send(Cycle::ZERO, NodeId(2), NodeId(3), 3);
        let mut woken = Vec::new();
        assert!(f.tick_observed(Cycle::new(1), &mut woken), "injection");
        assert!(woken.is_empty(), "nothing delivered yet");
        f.tick_observed(Cycle::new(2), &mut woken);
        assert!(woken.is_empty());
        f.tick_observed(Cycle::new(3), &mut woken);
        assert_eq!(woken, vec![NodeId(2), NodeId(3)], "ascending, deduped");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut f = fabric(1, 1, 1);
        f.send(Cycle::ZERO, NodeId(0), NodeId(99), 0);
    }

    #[test]
    fn zero_latency_fabric_delivers_next_tick() {
        let mut f = fabric(0, 1, 1);
        f.send(Cycle::ZERO, NodeId(0), NodeId(1), 5);
        f.tick(Cycle::new(1));
        assert_eq!(f.inbox_len(NodeId(1)), 1);
    }

    #[test]
    fn cross_pair_interleave_is_deterministic() {
        let run = || {
            let mut f = fabric(2, 1, 1);
            f.send(Cycle::ZERO, NodeId(0), NodeId(3), 100);
            f.send(Cycle::ZERO, NodeId(1), NodeId(3), 200);
            f.send(Cycle::ZERO, NodeId(2), NodeId(3), 300);
            drain_all(&mut f, 1, 50)
                .into_iter()
                .map(|(c, e)| (c, e.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn for_machine_matches_config() {
        let cfg = tenways_sim::MachineConfig::default();
        let f: Fabric<u8> = Fabric::for_machine(&cfg);
        assert_eq!(f.nodes(), cfg.node_count());
        assert_eq!(f.latency(), cfg.noc_latency);
    }
}

#[cfg(test)]
mod mesh_tests {
    use super::*;

    #[test]
    fn mesh_latency_is_manhattan() {
        let t = Topology::Mesh {
            width: 3,
            hop_latency: 2,
            router_latency: 1,
        };
        // Node layout: 0 1 2 / 3 4 5 / 6 7 8
        assert_eq!(t.latency(NodeId(0), NodeId(0)), 1);
        assert_eq!(t.latency(NodeId(0), NodeId(1)), 3);
        assert_eq!(t.latency(NodeId(0), NodeId(4)), 5);
        assert_eq!(t.latency(NodeId(0), NodeId(8)), 9);
        assert_eq!(t.latency(NodeId(8), NodeId(0)), 9, "symmetric");
    }

    #[test]
    fn crossbar_latency_is_uniform() {
        let t = Topology::Crossbar { latency: 6 };
        assert_eq!(t.latency(NodeId(0), NodeId(1)), 6);
        assert_eq!(t.latency(NodeId(3), NodeId(0)), 6);
        assert_eq!(t.diameter_latency(4), 6);
    }

    #[test]
    fn mesh_diameter_grows_with_size() {
        let t = Topology::Mesh {
            width: 4,
            hop_latency: 1,
            router_latency: 0,
        };
        assert_eq!(t.diameter_latency(16), 6, "corner to corner of 4x4");
        assert!(t.diameter_latency(16) > t.diameter_latency(4));
    }

    #[test]
    fn mesh_fabric_delivers_far_later_than_near() {
        let mut f: Fabric<u8> = Fabric::with_topology(
            9,
            Topology::Mesh {
                width: 3,
                hop_latency: 2,
                router_latency: 1,
            },
            2,
            2,
        );
        f.send(Cycle::ZERO, NodeId(1), NodeId(0), 1); // 1 hop: latency 3
        f.send(Cycle::ZERO, NodeId(8), NodeId(0), 8); // 4 hops: latency 9
        let mut got = Vec::new();
        for cy in 1..=15 {
            f.tick(Cycle::new(cy));
            for env in f.take_inbox(NodeId(0)) {
                got.push((cy, env.payload));
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, 1, "near message arrives first");
        assert!(got[1].0 > got[0].0);
    }

    #[test]
    fn mesh_preserves_same_pair_fifo() {
        let mut f: Fabric<u32> = Fabric::with_topology(
            9,
            Topology::Mesh {
                width: 3,
                hop_latency: 2,
                router_latency: 1,
            },
            1,
            4,
        );
        for i in 0..6 {
            f.send(Cycle::ZERO, NodeId(8), NodeId(0), i);
        }
        let mut got = Vec::new();
        for cy in 1..=40 {
            f.tick(Cycle::new(cy));
            got.extend(f.take_inbox(NodeId(0)).map(|e| e.payload));
        }
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn min_latency_is_adjacent_pair() {
        let t = Topology::Mesh {
            width: 3,
            hop_latency: 2,
            router_latency: 1,
        };
        assert_eq!(t.min_latency(9), 3, "one hop plus router");
        let column = Topology::Mesh {
            width: 1,
            hop_latency: 5,
            router_latency: 0,
        };
        assert_eq!(
            column.min_latency(4),
            5,
            "vertical neighbors on a 1-wide grid"
        );
        assert_eq!(Topology::Crossbar { latency: 6 }.min_latency(4), 6);
        assert_eq!(
            Topology::Crossbar { latency: 6 }.min_latency(1),
            0,
            "no pair"
        );
    }

    #[test]
    fn for_machine_honors_mesh_flag() {
        let cfg = tenways_sim::MachineConfig::builder()
            .mesh(true)
            .build()
            .unwrap();
        let f: Fabric<u8> = Fabric::for_machine(&cfg);
        assert!(matches!(f.topology(), Topology::Mesh { .. }));
        let cfg = tenways_sim::MachineConfig::builder()
            .mesh(false)
            .build()
            .unwrap();
        let f: Fabric<u8> = Fabric::for_machine(&cfg);
        assert!(matches!(f.topology(), Topology::Crossbar { .. }));
    }
}

#[cfg(test)]
mod epoch_tests {
    use super::*;

    fn fabric(latency: u64) -> Fabric<u32> {
        Fabric::new(4, latency, 1, 1)
    }

    /// Drains every inbox after a tick, as `(cycle, dst, payload)`.
    fn deliveries(f: &mut Fabric<u32>, cy: u64) -> Vec<(u64, u16, u32)> {
        f.tick(Cycle::new(cy));
        let mut out = Vec::new();
        for n in 0..f.nodes() {
            for env in f.take_inbox(NodeId(n as u16)) {
                out.push((cy, n as u16, env.payload));
            }
        }
        out
    }

    /// Staging then absorbing the captured inserts reproduces the exact
    /// delivery schedule of a never-staged run, including cross-source
    /// ties into one destination.
    #[test]
    fn stage_and_absorb_matches_sequential() {
        let run = |staged: bool| {
            let mut f = fabric(2);
            f.send(Cycle::ZERO, NodeId(0), NodeId(3), 100);
            f.send(Cycle::ZERO, NodeId(1), NodeId(3), 200);
            f.send(Cycle::ZERO, NodeId(2), NodeId(1), 300);
            let mut got = Vec::new();
            for cy in 1..=10 {
                if staged {
                    f.set_staging(true);
                    got.extend(deliveries(&mut f, cy));
                    f.set_staging(false);
                    let mut batch = f.take_staged();
                    batch.sort_by_key(|s| (s.inject_at, s.env.src.index()));
                    f.absorb_staged(batch);
                } else {
                    got.extend(deliveries(&mut f, cy));
                }
            }
            got
        };
        let sequential = run(false);
        assert_eq!(sequential.len(), 3);
        assert_eq!(run(true), sequential);
    }

    /// Regression for the sharded stale-min hazard: a view with nothing
    /// in flight reports no next event; once a cross-shard insert is
    /// absorbed, `next_event` must surface its delivery cycle. If
    /// `absorb_staged` forgot to refresh `earliest_deliver` /
    /// `in_flight` / `active_dsts`, the owning shard would sleep
    /// straight past the delivery.
    #[test]
    fn absorb_refreshes_next_event_min() {
        // Shard A owns node 0 (the sender), shard B owns node 3.
        let mut a = fabric(6);
        let mut b = fabric(6);
        a.set_staging(true);
        a.send(Cycle::new(3), NodeId(0), NodeId(3), 7);
        a.tick(Cycle::new(4)); // injects: due at 4 + 6 = 10
        assert_eq!(a.next_event(Cycle::new(4)), None, "staged, not in flight");
        assert_eq!(b.next_event(Cycle::new(4)), None, "idle view would sleep");
        let staged = a.take_staged();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].inject_at, Cycle::new(4));
        assert_eq!(staged[0].deliver_at, Cycle::new(10));
        b.absorb_staged(staged);
        assert_eq!(
            b.next_event(Cycle::new(4)),
            Some(Cycle::new(10)),
            "absorbed delivery must wake the owner"
        );
        b.skip_idle(Cycle::new(4), 5);
        assert!(b.tick(Cycle::new(10)), "delivery happens on time");
        assert_eq!(b.take_inbox(NodeId(3)).next().unwrap().payload, 7);
        assert!(b.is_quiescent());
        // Absorbing an *earlier* delivery than a local pending one must
        // pull the cached minimum down, not leave it stale.
        let mut c = fabric(6);
        c.send(Cycle::new(10), NodeId(1), NodeId(2), 1);
        c.tick(Cycle::new(11)); // due at 17
        assert_eq!(c.next_event(Cycle::new(11)), Some(Cycle::new(17)));
        let mut d = fabric(2);
        d.set_staging(true);
        d.send(Cycle::new(11), NodeId(0), NodeId(2), 2);
        d.tick(Cycle::new(12)); // due at 14
        c.absorb_staged(d.take_staged());
        assert_eq!(c.next_event(Cycle::new(12)), Some(Cycle::new(14)));
    }

    /// Split distributes queues by node owner and recompose restores a
    /// fabric whose later behavior and statistics match a never-split
    /// run.
    #[test]
    fn split_recompose_round_trips() {
        let build = || {
            let mut f = fabric(3);
            // One of each queue kind: delivered-awaiting-pickup at node
            // 1, in flight toward node 2, pending injection at node 3.
            f.send(Cycle::ZERO, NodeId(0), NodeId(1), 10);
            for cy in 1..=4 {
                f.tick(Cycle::new(cy));
            }
            f.send(Cycle::new(4), NodeId(0), NodeId(2), 20);
            f.tick(Cycle::new(5));
            f.send(Cycle::new(5), NodeId(3), NodeId(0), 30);
            f
        };
        let mut whole = build();
        let views = build().split(2, |n| n.index() % 2);
        assert_eq!(views.len(), 2);
        assert_eq!(
            views[0].next_event(Cycle::new(5)),
            Some(Cycle::new(8)),
            "even view holds exactly node 2's flight entry"
        );
        assert_eq!(
            views[1].next_event(Cycle::new(5)),
            Some(Cycle::new(6)),
            "odd view holds node 3's backlog and node 1's inbox"
        );
        let mut merged = Fabric::recompose(views);
        assert_eq!(
            merged.stats().get("noc.sent"),
            whole.stats().get("noc.sent")
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for cy in 6..=12 {
            a.extend(deliveries(&mut whole, cy));
            b.extend(deliveries(&mut merged, cy));
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "inbox backlog, flight and injected all arrive");
        assert!(whole.is_quiescent() && merged.is_quiescent());
        assert_eq!(
            merged.stats().get("noc.delivered"),
            whole.stats().get("noc.delivered")
        );
    }
}
