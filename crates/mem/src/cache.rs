//! Set-associative cache arrays: [`CacheArray`], [`CacheParams`],
//! [`Replacement`].

use tenways_sim::{BlockAddr, DetRng};

/// Replacement policy for a [`CacheArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// True least-recently-used (per-way timestamps).
    Lru,
    /// Tree pseudo-LRU (one bit per internal node).
    TreePlru,
    /// Uniform random victim (deterministic, seeded).
    Random,
}

/// Validated organization of a [`CacheArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    sets: usize,
    ways: usize,
    policy: Replacement,
}

impl CacheParams {
    /// Creates parameters for a `sets` × `ways` array.
    ///
    /// # Errors
    ///
    /// Returns `None` if `sets` is zero or not a power of two, or if `ways`
    /// is zero.
    pub fn new(sets: usize, ways: usize, policy: Replacement) -> Option<Self> {
        if sets == 0 || !sets.is_power_of_two() || ways == 0 {
            return None;
        }
        Some(CacheParams { sets, ways, policy })
    }

    /// Number of sets.
    pub const fn sets(self) -> usize {
        self.sets
    }

    /// Associativity.
    pub const fn ways(self) -> usize {
        self.ways
    }

    /// Total block capacity.
    pub const fn blocks(self) -> usize {
        self.sets * self.ways
    }

    /// The replacement policy.
    pub const fn policy(self) -> Replacement {
        self.policy
    }
}

/// A block pushed out of the array by [`CacheArray::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Which block was evicted.
    pub block: BlockAddr,
    /// Its payload (protocol state, dirtiness, speculation bits, ...).
    pub payload: T,
}

#[derive(Debug, Clone)]
struct Way<T> {
    block: BlockAddr,
    payload: T,
    /// LRU timestamp (monotone per-array counter).
    stamp: u64,
}

#[derive(Debug, Clone)]
struct Set<T> {
    ways: Vec<Option<Way<T>>>,
    /// Tree-PLRU direction bits (ways-1 internal nodes, index 0 = root).
    plru: Vec<bool>,
}

/// A set-associative array mapping [`BlockAddr`]s to payloads `T`.
///
/// The array is purely structural: hits, insertions and evictions; it never
/// interprets the payload. Timing, coherence state and writeback policy live
/// in the protocol layer above.
///
/// Replacement prefers invalid ways; otherwise the victim is chosen by the
/// configured [`Replacement`] policy. Random replacement is deterministic,
/// seeded from the array's construction seed.
#[derive(Debug, Clone)]
pub struct CacheArray<T> {
    params: CacheParams,
    sets: Vec<Set<T>>,
    tick: u64,
    rng: DetRng,
    occupied: usize,
}

impl<T> CacheArray<T> {
    /// Creates an empty array.
    pub fn new(params: CacheParams) -> Self {
        CacheArray::with_seed(params, 0)
    }

    /// Creates an empty array whose random-replacement stream is seeded by
    /// `seed` (distinct caches should get distinct seeds).
    pub fn with_seed(params: CacheParams, seed: u64) -> Self {
        let sets = (0..params.sets)
            .map(|_| Set {
                ways: (0..params.ways).map(|_| None).collect(),
                plru: vec![false; params.ways.saturating_sub(1)],
            })
            .collect();
        CacheArray {
            params,
            sets,
            tick: 0,
            rng: DetRng::seed(seed).split("cache-array"),
            occupied: 0,
        }
    }

    /// The array's organization.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether the array holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.as_u64() as usize) & (self.params.sets - 1)
    }

    /// Looks up a block without touching replacement state (a *probe*).
    pub fn peek(&self, block: BlockAddr) -> Option<&T> {
        let set = &self.sets[self.set_index(block)];
        set.ways
            .iter()
            .flatten()
            .find(|w| w.block == block)
            .map(|w| &w.payload)
    }

    /// Looks up a block, promoting it in the replacement order on hit.
    pub fn get(&mut self, block: BlockAddr) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let si = self.set_index(block);
        let set = &mut self.sets[si];
        let way_idx = set
            .ways
            .iter()
            .position(|w| w.as_ref().is_some_and(|w| w.block == block))?;
        if let Some(w) = set.ways[way_idx].as_mut() {
            w.stamp = tick;
        }
        Self::touch_plru(&mut set.plru, way_idx, self.params.ways);
        set.ways[way_idx].as_mut().map(|w| &mut w.payload)
    }

    /// Mutable access without promoting (for protocol-side state updates that
    /// should not look like a use, e.g. handling a remote invalidation).
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let si = self.set_index(block);
        self.sets[si]
            .ways
            .iter_mut()
            .flatten()
            .find(|w| w.block == block)
            .map(|w| &mut w.payload)
    }

    /// Inserts a block, returning the victim if a valid block had to be
    /// evicted. If the block is already resident its payload is replaced
    /// (and no eviction occurs).
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<Evicted<T>> {
        self.tick += 1;
        let tick = self.tick;
        let si = self.set_index(block);
        let ways = self.params.ways;
        let policy = self.params.policy;

        // Already resident: replace payload in place.
        let set = &mut self.sets[si];
        if let Some(idx) = set
            .ways
            .iter()
            .position(|w| w.as_ref().is_some_and(|w| w.block == block))
        {
            set.ways[idx] = Some(Way {
                block,
                payload,
                stamp: tick,
            });
            Self::touch_plru(&mut set.plru, idx, ways);
            return None;
        }

        // Free way available.
        if let Some(idx) = set.ways.iter().position(Option::is_none) {
            set.ways[idx] = Some(Way {
                block,
                payload,
                stamp: tick,
            });
            Self::touch_plru(&mut set.plru, idx, ways);
            self.occupied += 1;
            return None;
        }

        // Choose a victim.
        let victim_idx = match policy {
            Replacement::Lru => set
                .ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.as_ref().map_or(0, |w| w.stamp))
                .map(|(i, _)| i)
                .expect("ways > 0"),
            Replacement::TreePlru => Self::plru_victim(&set.plru, ways),
            Replacement::Random => self.rng.below(ways as u64) as usize,
        };
        let set = &mut self.sets[si];
        let victim = set.ways[victim_idx]
            .replace(Way {
                block,
                payload,
                stamp: tick,
            })
            .expect("victim way was occupied");
        Self::touch_plru(&mut set.plru, victim_idx, ways);
        Some(Evicted {
            block: victim.block,
            payload: victim.payload,
        })
    }

    /// Picks the victim that [`CacheArray::insert`] of a non-resident block
    /// into a full set would evict, without modifying anything. Returns
    /// `None` if the set still has a free way or the block is resident.
    pub fn victim_preview(&self, block: BlockAddr) -> Option<BlockAddr> {
        let set = &self.sets[self.set_index(block)];
        if set
            .ways
            .iter()
            .any(|w| w.as_ref().is_some_and(|w| w.block == block))
        {
            return None;
        }
        if set.ways.iter().any(Option::is_none) {
            return None;
        }
        let idx = match self.params.policy {
            Replacement::Lru => set
                .ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.as_ref().map_or(0, |w| w.stamp))
                .map(|(i, _)| i)?,
            Replacement::TreePlru => Self::plru_victim(&set.plru, self.params.ways),
            // Random preview is not representative; report the way the RNG
            // would *not* necessarily pick — callers needing exact victims
            // should use LRU/PLRU. We return way 0 deterministically.
            Replacement::Random => 0,
        };
        set.ways[idx].as_ref().map(|w| w.block)
    }

    /// Removes a block, returning its payload.
    pub fn remove(&mut self, block: BlockAddr) -> Option<T> {
        let si = self.set_index(block);
        let set = &mut self.sets[si];
        let idx = set
            .ways
            .iter()
            .position(|w| w.as_ref().is_some_and(|w| w.block == block))?;
        let way = set.ways[idx].take()?;
        self.occupied -= 1;
        Some(way.payload)
    }

    /// Iterates `(block, &payload)` over all resident blocks (set order).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.ways.iter().flatten())
            .map(|w| (w.block, &w.payload))
    }

    /// Iterates `(block, &mut payload)` over all resident blocks.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockAddr, &mut T)> + '_ {
        self.sets
            .iter_mut()
            .flat_map(|s| s.ways.iter_mut().flatten())
            .map(|w| (w.block, &mut w.payload))
    }

    /// Walks the PLRU tree away from `way` so it becomes "recently used".
    fn touch_plru(plru: &mut [bool], way: usize, ways: usize) {
        if plru.is_empty() {
            return;
        }
        // Conceptual complete binary tree over the next power of two ≥ ways;
        // node i has children 2i+1, 2i+2; leaves map to ways left-to-right.
        let leaves = ways.next_power_of_two();
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            if node < plru.len() {
                // Point the bit AWAY from the touched way.
                plru[node] = !go_right;
            }
            node = 2 * node + 1 + usize::from(go_right);
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    /// Follows the PLRU bits to the victim way.
    fn plru_victim(plru: &[bool], ways: usize) -> usize {
        if plru.is_empty() {
            return 0;
        }
        let leaves = ways.next_power_of_two();
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = node < plru.len() && plru[node];
            node = 2 * node + 1 + usize::from(go_right);
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo.min(ways - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(sets: usize, ways: usize, policy: Replacement) -> CacheParams {
        CacheParams::new(sets, ways, policy).unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(CacheParams::new(0, 4, Replacement::Lru).is_none());
        assert!(CacheParams::new(3, 4, Replacement::Lru).is_none());
        assert!(CacheParams::new(4, 0, Replacement::Lru).is_none());
        let p = params(8, 2, Replacement::Lru);
        assert_eq!(p.blocks(), 16);
    }

    #[test]
    fn insert_then_get() {
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 2, Replacement::Lru));
        assert!(c.insert(BlockAddr(5), 55).is_none());
        assert_eq!(c.peek(BlockAddr(5)), Some(&55));
        assert_eq!(c.get(BlockAddr(5)), Some(&mut 55));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_payload_without_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(params(1, 1, Replacement::Lru));
        c.insert(BlockAddr(1), 10);
        let ev = c.insert(BlockAddr(1), 20);
        assert!(ev.is_none());
        assert_eq!(c.peek(BlockAddr(1)), Some(&20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set, two ways: blocks 0, 4, 8 all map to set 0 (4 sets).
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 2, Replacement::Lru));
        c.insert(BlockAddr(0), 0);
        c.insert(BlockAddr(4), 4);
        // Touch 0 so 4 is LRU.
        c.get(BlockAddr(0));
        let ev = c.insert(BlockAddr(8), 8).expect("set was full");
        assert_eq!(ev.block, BlockAddr(4));
        assert!(c.peek(BlockAddr(0)).is_some());
        assert!(c.peek(BlockAddr(8)).is_some());
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 2, Replacement::Lru));
        c.insert(BlockAddr(0), 0);
        c.insert(BlockAddr(4), 4);
        // peek at 0 — must NOT promote it; 0 stays LRU.
        assert_eq!(c.peek(BlockAddr(0)), Some(&0));
        let ev = c.insert(BlockAddr(8), 8).unwrap();
        assert_eq!(ev.block, BlockAddr(0));
    }

    #[test]
    fn remove_frees_way() {
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 1, Replacement::Lru));
        c.insert(BlockAddr(0), 1);
        assert_eq!(c.remove(BlockAddr(0)), Some(1));
        assert_eq!(c.remove(BlockAddr(0)), None);
        assert!(c.is_empty());
        assert!(c.insert(BlockAddr(4), 2).is_none(), "way is free again");
    }

    #[test]
    fn victim_preview_matches_lru_insert() {
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 2, Replacement::Lru));
        c.insert(BlockAddr(0), 0);
        c.insert(BlockAddr(4), 4);
        c.get(BlockAddr(0));
        assert_eq!(c.victim_preview(BlockAddr(8)), Some(BlockAddr(4)));
        let ev = c.insert(BlockAddr(8), 8).unwrap();
        assert_eq!(ev.block, BlockAddr(4));
        // Resident block or free set previews None.
        assert_eq!(c.victim_preview(BlockAddr(8)), None);
        assert_eq!(c.victim_preview(BlockAddr(1)), None);
    }

    #[test]
    fn plru_victimizes_an_untouched_way() {
        let mut c: CacheArray<u32> = CacheArray::new(params(1, 4, Replacement::TreePlru));
        for i in 0..4 {
            c.insert(BlockAddr(i), i as u32);
        }
        // Touch 0 and 1 heavily; victim should be 2 or 3.
        for _ in 0..4 {
            c.get(BlockAddr(0));
            c.get(BlockAddr(1));
        }
        let ev = c.insert(BlockAddr(100), 100).unwrap();
        assert!(
            ev.block == BlockAddr(2) || ev.block == BlockAddr(3),
            "PLRU evicted a hot way: {:?}",
            ev.block
        );
    }

    #[test]
    fn plru_single_way_works() {
        let mut c: CacheArray<u32> = CacheArray::new(params(2, 1, Replacement::TreePlru));
        c.insert(BlockAddr(0), 1);
        let ev = c.insert(BlockAddr(2), 2).unwrap();
        assert_eq!(ev.block, BlockAddr(0));
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = |seed| {
            let mut c: CacheArray<u32> =
                CacheArray::with_seed(params(1, 4, Replacement::Random), seed);
            for i in 0..4 {
                c.insert(BlockAddr(i), 0);
            }
            let mut evictions = Vec::new();
            for i in 4..20 {
                if let Some(ev) = c.insert(BlockAddr(i), 0) {
                    evictions.push(ev.block);
                }
            }
            evictions
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should diverge");
    }

    #[test]
    fn iter_visits_all_blocks() {
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 2, Replacement::Lru));
        for i in 0..6 {
            c.insert(BlockAddr(i), i as u32 * 10);
        }
        let mut got: Vec<_> = c.iter().map(|(b, &p)| (b.as_u64(), p)).collect();
        got.sort_unstable();
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], (0, 0));
        assert_eq!(got[5], (5, 50));
    }

    #[test]
    fn iter_mut_allows_payload_updates() {
        let mut c: CacheArray<u32> = CacheArray::new(params(2, 2, Replacement::Lru));
        c.insert(BlockAddr(0), 1);
        c.insert(BlockAddr(1), 2);
        for (_, p) in c.iter_mut() {
            *p += 100;
        }
        assert_eq!(c.peek(BlockAddr(0)), Some(&101));
        assert_eq!(c.peek(BlockAddr(1)), Some(&102));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c: CacheArray<u32> = CacheArray::new(params(4, 1, Replacement::Lru));
        for i in 0..4 {
            assert!(c.insert(BlockAddr(i), 0).is_none(), "distinct sets");
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn lru_full_set_cycles_fifo_under_streaming() {
        let mut c: CacheArray<u32> = CacheArray::new(params(1, 3, Replacement::Lru));
        c.insert(BlockAddr(0), 0);
        c.insert(BlockAddr(1), 0);
        c.insert(BlockAddr(2), 0);
        let e1 = c.insert(BlockAddr(3), 0).unwrap();
        let e2 = c.insert(BlockAddr(4), 0).unwrap();
        assert_eq!(e1.block, BlockAddr(0));
        assert_eq!(e2.block, BlockAddr(1));
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use tenways_sim::DetRng;

    /// Occupancy never exceeds capacity and len() tracks reality.
    #[test]
    fn occupancy_invariant() {
        for case in 0..32u64 {
            let mut rng = DetRng::seed(0xCAC4E).split("occupancy").split_index(case);
            let n = rng.range(1, 200);
            let mut c: CacheArray<u64> =
                CacheArray::new(CacheParams::new(4, 2, Replacement::Lru).unwrap());
            for _ in 0..n {
                let blk = rng.below(64);
                if rng.chance(0.5) {
                    c.insert(BlockAddr(blk), blk);
                } else {
                    c.remove(BlockAddr(blk));
                }
                assert!(c.len() <= c.params().blocks(), "case {case}: over capacity");
                assert_eq!(c.len(), c.iter().count(), "case {case}: len out of sync");
            }
        }
    }

    /// After an insert the block is always resident, and an eviction only
    /// happens when the set was full of *other* blocks.
    #[test]
    fn insert_makes_resident() {
        for case in 0..32u64 {
            let mut rng = DetRng::seed(0xCAC4E).split("resident").split_index(case);
            let n = rng.range(1, 100);
            let mut c: CacheArray<u64> =
                CacheArray::new(CacheParams::new(2, 2, Replacement::TreePlru).unwrap());
            for _ in 0..n {
                let b = rng.below(32);
                let ev = c.insert(BlockAddr(b), b);
                assert!(c.peek(BlockAddr(b)).is_some(), "case {case}: not resident");
                if let Some(ev) = ev {
                    assert_ne!(ev.block, BlockAddr(b), "case {case}: evicted itself");
                    // victim came from the same set
                    assert_eq!(
                        ev.block.as_u64() & 1,
                        b & 1,
                        "case {case}: cross-set victim"
                    );
                }
            }
        }
    }

    /// A resident block's payload survives unrelated traffic.
    #[test]
    fn get_returns_inserted_payload() {
        for seed in 0..100u64 {
            let mut c: CacheArray<u64> =
                CacheArray::with_seed(CacheParams::new(8, 4, Replacement::Random).unwrap(), seed);
            c.insert(BlockAddr(3), 333);
            // Traffic to other sets only.
            for i in 0..100u64 {
                let b = i * 8; // set 0
                c.insert(BlockAddr(b), b);
            }
            assert_eq!(c.peek(BlockAddr(3)), Some(&333), "seed {seed}");
        }
    }
}
