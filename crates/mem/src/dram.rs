//! Banked DRAM timing: [`DramBanks`].
//!
//! The model captures the two properties that matter at the level of this
//! simulator: a long fixed access latency, and limited per-bank throughput
//! (each access occupies its bank for `occupancy` cycles, so concurrent
//! accesses to the same bank serialize while accesses to different banks
//! overlap — the memory-level-parallelism effect).

use tenways_sim::{BlockAddr, Cycle, StatSet};

/// Validated DRAM organization and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramParams {
    banks: usize,
    latency: u64,
    occupancy: u64,
}

impl DramParams {
    /// Creates parameters: `banks` (power of two), access `latency`, per-
    /// access bank `occupancy`.
    ///
    /// # Errors
    ///
    /// Returns `None` if `banks` is zero or not a power of two, or if
    /// `occupancy` is zero.
    pub fn new(banks: usize, latency: u64, occupancy: u64) -> Option<Self> {
        if banks == 0 || !banks.is_power_of_two() || occupancy == 0 {
            return None;
        }
        Some(DramParams {
            banks,
            latency,
            occupancy,
        })
    }

    /// Number of banks.
    pub const fn banks(self) -> usize {
        self.banks
    }

    /// Access latency in cycles.
    pub const fn latency(self) -> u64 {
        self.latency
    }

    /// Per-access bank busy time in cycles.
    pub const fn occupancy(self) -> u64 {
        self.occupancy
    }
}

/// Bank-interleaved DRAM with per-bank occupancy.
///
/// # Example
///
/// ```rust
/// use tenways_mem::{DramBanks, DramParams};
/// use tenways_sim::{BlockAddr, Cycle};
///
/// let mut dram = DramBanks::new(DramParams::new(2, 100, 20).unwrap());
/// // Two accesses to the same bank serialize on occupancy:
/// let t0 = dram.access(Cycle::ZERO, BlockAddr(0));
/// let t1 = dram.access(Cycle::ZERO, BlockAddr(2)); // same bank (2 % 2 == 0)
/// assert_eq!(t0, Cycle::new(100));
/// assert_eq!(t1, Cycle::new(120));
/// // A different bank proceeds in parallel:
/// let t2 = dram.access(Cycle::ZERO, BlockAddr(1));
/// assert_eq!(t2, Cycle::new(100));
/// ```
#[derive(Debug, Clone)]
pub struct DramBanks {
    params: DramParams,
    /// Cycle at which each bank next becomes free.
    free_at: Vec<Cycle>,
    stats: StatSet,
}

impl DramBanks {
    /// Creates an idle DRAM.
    pub fn new(params: DramParams) -> Self {
        DramBanks {
            params,
            free_at: vec![Cycle::ZERO; params.banks],
            stats: StatSet::new(),
        }
    }

    /// The configured organization.
    pub fn params(&self) -> DramParams {
        self.params
    }

    /// Which bank serves `block`.
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        (block.as_u64() % self.params.banks as u64) as usize
    }

    /// Schedules an access to `block` issued at `now`; returns the cycle the
    /// data is available. Bank conflicts push the start time back and are
    /// accounted in the stats as `dram.bank_wait_cycles`.
    pub fn access(&mut self, now: Cycle, block: BlockAddr) -> Cycle {
        let bank = self.bank_of(block);
        let start = self.free_at[bank].max(now);
        let wait = start - now;
        if wait > 0 {
            self.stats.bump_by("dram.bank_wait_cycles", wait);
            self.stats.bump("dram.bank_conflicts");
        }
        self.free_at[bank] = start.after(self.params.occupancy);
        self.stats.bump("dram.accesses");
        start.after(self.params.latency)
    }

    /// Access statistics (`dram.accesses`, `dram.bank_conflicts`,
    /// `dram.bank_wait_cycles`).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Earliest cycle at which every bank is idle.
    pub fn quiescent_at(&self) -> Cycle {
        self.free_at.iter().copied().max().unwrap_or(Cycle::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(banks: usize, lat: u64, occ: u64) -> DramBanks {
        DramBanks::new(DramParams::new(banks, lat, occ).unwrap())
    }

    #[test]
    fn params_validation() {
        assert!(DramParams::new(0, 100, 10).is_none());
        assert!(DramParams::new(3, 100, 10).is_none());
        assert!(DramParams::new(4, 100, 0).is_none());
        assert!(DramParams::new(4, 0, 10).is_some(), "zero latency is legal");
    }

    #[test]
    fn single_access_takes_latency() {
        let mut d = dram(4, 120, 24);
        assert_eq!(d.access(Cycle::new(10), BlockAddr(0)), Cycle::new(130));
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = dram(2, 100, 20);
        let a = d.access(Cycle::ZERO, BlockAddr(0));
        let b = d.access(Cycle::ZERO, BlockAddr(4));
        let c = d.access(Cycle::ZERO, BlockAddr(8));
        assert_eq!(a, Cycle::new(100));
        assert_eq!(b, Cycle::new(120));
        assert_eq!(c, Cycle::new(140));
        assert_eq!(d.stats().get("dram.bank_conflicts"), 2);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram(4, 100, 20);
        let times: Vec<Cycle> = (0..4)
            .map(|b| d.access(Cycle::ZERO, BlockAddr(b)))
            .collect();
        assert!(times.iter().all(|&t| t == Cycle::new(100)));
        assert_eq!(d.stats().get("dram.bank_conflicts"), 0);
    }

    #[test]
    fn late_arrival_after_bank_free_has_no_wait() {
        let mut d = dram(2, 100, 20);
        d.access(Cycle::ZERO, BlockAddr(0));
        // Bank free at 20; arriving at 50 must not queue.
        let t = d.access(Cycle::new(50), BlockAddr(2));
        assert_eq!(t, Cycle::new(150));
        assert_eq!(d.stats().get("dram.bank_wait_cycles"), 0);
    }

    #[test]
    fn quiescent_tracks_latest_bank() {
        let mut d = dram(2, 100, 30);
        assert_eq!(d.quiescent_at(), Cycle::ZERO);
        d.access(Cycle::new(5), BlockAddr(1));
        assert_eq!(d.quiescent_at(), Cycle::new(35));
    }

    #[test]
    fn accesses_are_counted() {
        let mut d = dram(2, 10, 5);
        for i in 0..7 {
            d.access(Cycle::new(i * 100), BlockAddr(i));
        }
        assert_eq!(d.stats().get("dram.accesses"), 7);
    }
}
