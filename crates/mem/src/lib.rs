//! Memory structures for `tenways`: set-associative cache arrays with
//! pluggable replacement, miss-status holding registers, and a banked DRAM
//! timing model.
//!
//! This crate knows nothing about coherence protocols or cores; it provides
//! the *storage and timing* building blocks they are assembled from:
//!
//! * [`CacheArray`] — a set-associative array generic over its per-block
//!   payload (the coherence crate stores protocol state + speculation bits
//!   there), with LRU / tree-PLRU / random replacement.
//! * [`MshrFile`] — bounded miss tracking with per-block waiter lists, so a
//!   second miss to an in-flight block merges instead of re-requesting.
//! * [`DramBanks`] — bank-interleaved memory with per-bank occupancy, the
//!   source of memory-level-parallelism limits.
//!
//! # Example
//!
//! ```rust
//! use tenways_mem::{CacheArray, CacheParams, Replacement};
//! use tenways_sim::BlockAddr;
//!
//! let params = CacheParams::new(4, 2, Replacement::Lru).unwrap();
//! let mut cache: CacheArray<u8> = CacheArray::new(params);
//! assert!(cache.get(BlockAddr(0)).is_none());
//! let evicted = cache.insert(BlockAddr(0), 7);
//! assert!(evicted.is_none());
//! assert_eq!(*cache.get(BlockAddr(0)).unwrap(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod mshr;

pub use cache::{CacheArray, CacheParams, Evicted, Replacement};
pub use dram::{DramBanks, DramParams};
pub use mshr::{MshrEntry, MshrError, MshrFile};
