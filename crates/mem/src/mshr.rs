//! Miss-status holding registers: [`MshrFile`].
//!
//! An MSHR tracks one outstanding miss per block. Later requests to the same
//! block *merge* into the existing entry's waiter list instead of issuing a
//! duplicate request — the standard mechanism that makes non-blocking caches
//! possible. Capacity is bounded; when the file is full the requester must
//! stall (a structural hazard the core accounts separately).

use std::collections::BTreeMap;

use tenways_sim::BlockAddr;

/// Why an MSHR allocation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// All entries are in use; the requester must retry later.
    Full,
}

impl std::fmt::Display for MshrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrError::Full => write!(f, "all MSHR entries in use"),
        }
    }
}

impl std::error::Error for MshrError {}

/// One in-flight miss and the requests waiting on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrEntry<W> {
    /// The missing block.
    pub block: BlockAddr,
    /// Requests merged into this miss, in arrival order.
    pub waiters: Vec<W>,
}

/// A bounded file of [`MshrEntry`]s, keyed by block.
///
/// # Example
///
/// ```rust
/// use tenways_mem::MshrFile;
/// use tenways_sim::BlockAddr;
///
/// let mut mshrs: MshrFile<&str> = MshrFile::new(2);
/// assert!(mshrs.allocate(BlockAddr(1), "load A").unwrap()); // primary miss
/// assert!(!mshrs.allocate(BlockAddr(1), "load B").unwrap()); // merged
/// let entry = mshrs.complete(BlockAddr(1)).unwrap();
/// assert_eq!(entry.waiters, vec!["load A", "load B"]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    capacity: usize,
    entries: BTreeMap<u64, MshrEntry<W>>,
}

impl<W> MshrFile<W> {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: BTreeMap::new(),
        }
    }

    /// Registers a request for `block`.
    ///
    /// Returns `Ok(true)` if this is the *primary* miss (the caller must send
    /// the memory request), `Ok(false)` if it merged into an existing entry.
    ///
    /// # Errors
    ///
    /// [`MshrError::Full`] if a new entry is needed but none is free.
    pub fn allocate(&mut self, block: BlockAddr, waiter: W) -> Result<bool, MshrError> {
        if let Some(entry) = self.entries.get_mut(&block.as_u64()) {
            entry.waiters.push(waiter);
            return Ok(false);
        }
        if self.entries.len() >= self.capacity {
            return Err(MshrError::Full);
        }
        self.entries.insert(
            block.as_u64(),
            MshrEntry {
                block,
                waiters: vec![waiter],
            },
        );
        Ok(true)
    }

    /// Registers a *prefetch* for `block`: an entry with no waiters.
    ///
    /// Returns `Ok(true)` if a new entry was created (send the request),
    /// `Ok(false)` if the block already had an entry.
    ///
    /// # Errors
    ///
    /// [`MshrError::Full`] if no entry is free.
    pub fn allocate_prefetch(&mut self, block: BlockAddr) -> Result<bool, MshrError> {
        if self.entries.contains_key(&block.as_u64()) {
            return Ok(false);
        }
        if self.entries.len() >= self.capacity {
            return Err(MshrError::Full);
        }
        self.entries.insert(
            block.as_u64(),
            MshrEntry {
                block,
                waiters: Vec::new(),
            },
        );
        Ok(true)
    }

    /// Completes the miss for `block`, returning its entry (with all merged
    /// waiters) or `None` if no miss was outstanding.
    pub fn complete(&mut self, block: BlockAddr) -> Option<MshrEntry<W>> {
        self.entries.remove(&block.as_u64())
    }

    /// Whether a miss to `block` is outstanding.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.entries.contains_key(&block.as_u64())
    }

    /// Entries currently in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new primary miss would be rejected.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Iterates outstanding entries in block order.
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry<W>> + '_ {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_and_secondary_misses() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        assert_eq!(m.allocate(BlockAddr(9), 1), Ok(true));
        assert_eq!(m.allocate(BlockAddr(9), 2), Ok(false));
        assert_eq!(m.allocate(BlockAddr(9), 3), Ok(false));
        assert_eq!(m.len(), 1);
        let e = m.complete(BlockAddr(9)).unwrap();
        assert_eq!(e.waiters, vec![1, 2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_is_enforced_per_block_not_per_waiter() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.allocate(BlockAddr(1), 0), Ok(true));
        assert_eq!(m.allocate(BlockAddr(2), 0), Ok(true));
        assert!(m.is_full());
        assert_eq!(m.allocate(BlockAddr(3), 0), Err(MshrError::Full));
        // Merging into an existing block still works when full.
        assert_eq!(m.allocate(BlockAddr(1), 1), Ok(false));
    }

    #[test]
    fn complete_unknown_block_is_none() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert!(m.complete(BlockAddr(5)).is_none());
    }

    #[test]
    fn contains_tracks_lifecycle() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert!(!m.contains(BlockAddr(7)));
        m.allocate(BlockAddr(7), 0).unwrap();
        assert!(m.contains(BlockAddr(7)));
        m.complete(BlockAddr(7));
        assert!(!m.contains(BlockAddr(7)));
    }

    #[test]
    fn freeing_makes_room() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        m.allocate(BlockAddr(1), 0).unwrap();
        assert_eq!(m.allocate(BlockAddr(2), 0), Err(MshrError::Full));
        m.complete(BlockAddr(1));
        assert_eq!(m.allocate(BlockAddr(2), 0), Ok(true));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _: MshrFile<u32> = MshrFile::new(0);
    }

    #[test]
    fn iter_is_block_ordered() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        m.allocate(BlockAddr(30), 0).unwrap();
        m.allocate(BlockAddr(10), 0).unwrap();
        m.allocate(BlockAddr(20), 0).unwrap();
        let blocks: Vec<u64> = m.iter().map(|e| e.block.as_u64()).collect();
        assert_eq!(blocks, vec![10, 20, 30]);
    }
}
