//! The functional value layer: [`ArchMem`] and per-core speculative
//! overlays ([`SpecOverlay`]).
//!
//! Timing and values are decoupled in tenways: the coherence protocol
//! moves *addresses* with realistic timing, while program-visible values
//! live in one flat architectural memory updated at operation completion
//! times. Speculative epochs buffer their writes in a per-core overlay that
//! is flushed on commit and discarded on rollback; coherence-conflict
//! detection guarantees at most one speculative writer survives per block.

use std::collections::{BTreeMap, HashMap};

use tenways_sim::Addr;

/// Words per [`ArchMem`] page: 512 × 8 B = 4 KiB of payload.
const PAGE_WORDS: u64 = 512;
const PAGE_SHIFT: u32 = PAGE_WORDS.trailing_zeros();
const SLOT_MASK: u64 = PAGE_WORDS - 1;

/// One 4 KiB memory page plus a written-word bitmap. The bitmap keeps
/// [`ArchMem::footprint_words`] exact (a write of zero still counts as a
/// written word, just as it created a map entry in the old
/// `BTreeMap`-backed design).
#[derive(Debug, Clone)]
struct Page {
    data: [u64; PAGE_WORDS as usize],
    written: [u64; (PAGE_WORDS / 64) as usize],
}

impl Page {
    fn zeroed() -> Box<Self> {
        Box::new(Page {
            data: [0; PAGE_WORDS as usize],
            written: [0; (PAGE_WORDS / 64) as usize],
        })
    }
}

/// The shared, flat architectural memory (word-granular; unwritten
/// locations read as zero).
///
/// Storage is a page table over flat 4 KiB pages rather than a per-word
/// tree: reads and writes are two array indexes after one hash lookup,
/// which keeps the functional layer off the simulator's hot-path profile.
/// Reads of unmapped pages return 0 without allocating.
#[derive(Debug, Clone, Default)]
pub struct ArchMem {
    pages: HashMap<u64, Box<Page>>,
    footprint: usize,
}

impl ArchMem {
    /// Creates zero-initialized memory.
    pub fn new() -> Self {
        ArchMem::default()
    }

    /// Reads the word at `addr` (0 if never written).
    pub fn read(&self, addr: Addr) -> u64 {
        match self.pages.get(&(addr.0 >> PAGE_SHIFT)) {
            Some(page) => page.data[(addr.0 & SLOT_MASK) as usize],
            None => 0,
        }
    }

    /// Writes the word at `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        let page = self
            .pages
            .entry(addr.0 >> PAGE_SHIFT)
            .or_insert_with(Page::zeroed);
        let slot = (addr.0 & SLOT_MASK) as usize;
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        if page.written[word] & bit == 0 {
            page.written[word] |= bit;
            self.footprint += 1;
        }
        page.data[slot] = value;
    }

    /// Number of distinct words ever written.
    pub fn footprint_words(&self) -> usize {
        self.footprint
    }

    /// Reads the word at `addr`, or `None` if it was never written.
    /// Distinguishes a written zero from an untouched word, which is what
    /// lets [`EpochMem`] layer a sparse delta over a base memory.
    pub fn read_if_written(&self, addr: Addr) -> Option<u64> {
        let page = self.pages.get(&(addr.0 >> PAGE_SHIFT))?;
        let slot = (addr.0 & SLOT_MASK) as usize;
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        (page.written[word] & bit != 0).then(|| page.data[slot])
    }

    /// Folds another memory's written words into this one, draining it.
    ///
    /// The epoch-parallel scheduler merges per-shard write deltas back
    /// into the shared base at each epoch boundary. The deltas of one
    /// epoch are word-disjoint — two shards writing the same word within
    /// one lookahead window would need an ownership transfer faster than
    /// the fabric allows — so merge order across deltas cannot matter.
    pub fn merge_delta(&mut self, delta: &mut ArchMem) {
        for (pno, page) in delta.pages.drain() {
            for word in 0..(PAGE_WORDS / 64) as usize {
                let mut bits = page.written[word];
                while bits != 0 {
                    let slot = word as u64 * 64 + bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    self.write(Addr((pno << PAGE_SHIFT) | slot), page.data[slot as usize]);
                }
            }
        }
        delta.footprint = 0;
    }
}

/// What the core's functional layer needs from a value store.
///
/// The sequential schedulers run directly against the shared [`ArchMem`];
/// the epoch-parallel scheduler substitutes a per-shard [`EpochMem`] so
/// worker threads never touch one shared map mid-epoch.
pub trait MemBackend {
    /// Reads the word at `addr` (0 if never written).
    fn read(&self, addr: Addr) -> u64;
    /// Writes the word at `addr`.
    fn write(&mut self, addr: Addr, value: u64);
}

impl MemBackend for ArchMem {
    fn read(&self, addr: Addr) -> u64 {
        ArchMem::read(self, addr)
    }

    fn write(&mut self, addr: Addr, value: u64) {
        ArchMem::write(self, addr, value);
    }
}

/// A shard's view of memory during one epoch of the parallel scheduler:
/// reads fall through to a shared frozen base, writes land in a private
/// delta that the main thread merges into the base at the epoch boundary.
///
/// Reading through a base frozen at the epoch start is exact, not
/// approximate: for another core's write to become architecturally
/// readable here, the block's ownership must cross the fabric (recall,
/// then grant), and each traversal takes at least one lookahead window —
/// so any value a core may legitimately observe was merged at least one
/// boundary ago.
#[derive(Debug)]
pub struct EpochMem {
    base: std::sync::Arc<ArchMem>,
    delta: ArchMem,
}

impl EpochMem {
    /// Layers `delta` (usually drained from the previous epoch) over a
    /// frozen `base`.
    pub fn new(base: std::sync::Arc<ArchMem>, delta: ArchMem) -> Self {
        EpochMem { base, delta }
    }

    /// Tears the view down into the base handle and the accumulated
    /// delta, for the boundary merge.
    pub fn into_parts(self) -> (std::sync::Arc<ArchMem>, ArchMem) {
        (self.base, self.delta)
    }
}

impl MemBackend for EpochMem {
    fn read(&self, addr: Addr) -> u64 {
        self.delta
            .read_if_written(addr)
            .unwrap_or_else(|| self.base.read(addr))
    }

    fn write(&mut self, addr: Addr, value: u64) {
        self.delta.write(addr, value);
    }
}

/// A speculative epoch's private write buffer.
#[derive(Debug, Clone, Default)]
pub struct SpecOverlay {
    words: BTreeMap<u64, u64>,
}

impl SpecOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        SpecOverlay::default()
    }

    /// Reads a speculatively written word, if present.
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.words.get(&addr.0).copied()
    }

    /// Buffers a speculative write.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.0, value);
    }

    /// Commit: apply every buffered write to `mem` and clear.
    pub fn flush_into<M: MemBackend>(&mut self, mem: &mut M) {
        for (a, v) in std::mem::take(&mut self.words) {
            mem.write(Addr(a), v);
        }
    }

    /// Rollback: discard everything.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Whether any write is buffered.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of buffered words.
    pub fn len(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archmem_zero_default() {
        let m = ArchMem::new();
        assert_eq!(m.read(Addr(0x100)), 0);
    }

    #[test]
    fn archmem_read_write() {
        let mut m = ArchMem::new();
        m.write(Addr(8), 99);
        assert_eq!(m.read(Addr(8)), 99);
        assert_eq!(m.read(Addr(16)), 0);
        assert_eq!(m.footprint_words(), 1);
    }

    #[test]
    fn overlay_shadows_and_flushes() {
        let mut m = ArchMem::new();
        m.write(Addr(8), 1);
        let mut o = SpecOverlay::new();
        assert_eq!(o.read(Addr(8)), None);
        o.write(Addr(8), 2);
        assert_eq!(o.read(Addr(8)), Some(2));
        assert_eq!(m.read(Addr(8)), 1, "arch mem untouched until commit");
        o.flush_into(&mut m);
        assert_eq!(m.read(Addr(8)), 2);
        assert!(o.is_empty());
    }

    #[test]
    fn overlay_clear_discards() {
        let mut m = ArchMem::new();
        let mut o = SpecOverlay::new();
        o.write(Addr(0), 5);
        o.clear();
        o.flush_into(&mut m);
        assert_eq!(m.read(Addr(0)), 0);
    }

    #[test]
    fn archmem_write_of_zero_counts_in_footprint() {
        let mut m = ArchMem::new();
        m.write(Addr(40), 0);
        m.write(Addr(40), 0);
        assert_eq!(m.read(Addr(40)), 0);
        assert_eq!(m.footprint_words(), 1, "zero writes still occupy a word");
    }

    #[test]
    fn archmem_crosses_page_boundaries() {
        let mut m = ArchMem::new();
        // Neighbouring slots in one page, the last slot of the first page,
        // and slots in far-apart pages must not alias.
        let probes = [0u64, 1, 511, 512, 513, 1 << 20, (1 << 20) + 511, u64::MAX];
        for (i, &a) in probes.iter().enumerate() {
            m.write(Addr(a), i as u64 + 100);
        }
        for (i, &a) in probes.iter().enumerate() {
            assert_eq!(m.read(Addr(a)), i as u64 + 100, "addr {a:#x}");
        }
        assert_eq!(m.footprint_words(), probes.len());
        assert_eq!(m.read(Addr(514)), 0, "untouched slot on a mapped page");
    }

    #[test]
    fn read_if_written_distinguishes_zero_from_untouched() {
        let mut m = ArchMem::new();
        m.write(Addr(8), 0);
        assert_eq!(m.read_if_written(Addr(8)), Some(0));
        assert_eq!(m.read_if_written(Addr(16)), None, "same page, untouched");
        assert_eq!(m.read_if_written(Addr(1 << 30)), None, "unmapped page");
    }

    #[test]
    fn merge_delta_folds_and_drains() {
        let mut base = ArchMem::new();
        base.write(Addr(8), 1);
        base.write(Addr(600), 2);
        let mut delta = ArchMem::new();
        delta.write(Addr(8), 10); // overwrite
        delta.write(Addr(0), 0); // written zero must survive the merge
        delta.write(Addr(4000), 40); // new page
        base.merge_delta(&mut delta);
        assert_eq!(base.read(Addr(8)), 10);
        assert_eq!(base.read(Addr(600)), 2);
        assert_eq!(base.read_if_written(Addr(0)), Some(0));
        assert_eq!(base.read(Addr(4000)), 40);
        assert_eq!(base.footprint_words(), 4);
        assert_eq!(delta.footprint_words(), 0, "delta drained");
        assert_eq!(delta.read_if_written(Addr(8)), None);
    }

    #[test]
    fn epoch_mem_layers_delta_over_base() {
        let mut base = ArchMem::new();
        base.write(Addr(8), 1);
        base.write(Addr(16), 2);
        let mut em = EpochMem::new(std::sync::Arc::new(base), ArchMem::new());
        assert_eq!(em.read(Addr(8)), 1, "falls through to base");
        em.write(Addr(8), 9);
        em.write(Addr(24), 3);
        assert_eq!(em.read(Addr(8)), 9, "delta shadows base");
        assert_eq!(em.read(Addr(16)), 2);
        assert_eq!(em.read(Addr(24)), 3);
        let (base, mut delta) = em.into_parts();
        let mut base = std::sync::Arc::try_unwrap(base).unwrap();
        base.merge_delta(&mut delta);
        assert_eq!(base.read(Addr(8)), 9);
        assert_eq!(base.read(Addr(24)), 3);
    }

    #[test]
    fn overlay_len_tracks_distinct_addrs() {
        let mut o = SpecOverlay::new();
        o.write(Addr(0), 1);
        o.write(Addr(0), 2);
        o.write(Addr(8), 3);
        assert_eq!(o.len(), 2);
    }
}
