//! The functional value layer: [`ArchMem`] and per-core speculative
//! overlays ([`SpecOverlay`]).
//!
//! Timing and values are decoupled in tenways: the coherence protocol
//! moves *addresses* with realistic timing, while program-visible values
//! live in one flat architectural memory updated at operation completion
//! times. Speculative epochs buffer their writes in a per-core overlay that
//! is flushed on commit and discarded on rollback; coherence-conflict
//! detection guarantees at most one speculative writer survives per block.

use std::collections::BTreeMap;

use tenways_sim::Addr;

/// The shared, flat architectural memory (word-granular; unwritten
/// locations read as zero).
#[derive(Debug, Clone, Default)]
pub struct ArchMem {
    words: BTreeMap<u64, u64>,
}

impl ArchMem {
    /// Creates zero-initialized memory.
    pub fn new() -> Self {
        ArchMem::default()
    }

    /// Reads the word at `addr` (0 if never written).
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&addr.0).copied().unwrap_or(0)
    }

    /// Writes the word at `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.0, value);
    }

    /// Number of distinct words ever written.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

/// A speculative epoch's private write buffer.
#[derive(Debug, Clone, Default)]
pub struct SpecOverlay {
    words: BTreeMap<u64, u64>,
}

impl SpecOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        SpecOverlay::default()
    }

    /// Reads a speculatively written word, if present.
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.words.get(&addr.0).copied()
    }

    /// Buffers a speculative write.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.0, value);
    }

    /// Commit: apply every buffered write to `mem` and clear.
    pub fn flush_into(&mut self, mem: &mut ArchMem) {
        for (a, v) in std::mem::take(&mut self.words) {
            mem.write(Addr(a), v);
        }
    }

    /// Rollback: discard everything.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Whether any write is buffered.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of buffered words.
    pub fn len(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archmem_zero_default() {
        let m = ArchMem::new();
        assert_eq!(m.read(Addr(0x100)), 0);
    }

    #[test]
    fn archmem_read_write() {
        let mut m = ArchMem::new();
        m.write(Addr(8), 99);
        assert_eq!(m.read(Addr(8)), 99);
        assert_eq!(m.read(Addr(16)), 0);
        assert_eq!(m.footprint_words(), 1);
    }

    #[test]
    fn overlay_shadows_and_flushes() {
        let mut m = ArchMem::new();
        m.write(Addr(8), 1);
        let mut o = SpecOverlay::new();
        assert_eq!(o.read(Addr(8)), None);
        o.write(Addr(8), 2);
        assert_eq!(o.read(Addr(8)), Some(2));
        assert_eq!(m.read(Addr(8)), 1, "arch mem untouched until commit");
        o.flush_into(&mut m);
        assert_eq!(m.read(Addr(8)), 2);
        assert!(o.is_empty());
    }

    #[test]
    fn overlay_clear_discards() {
        let mut m = ArchMem::new();
        let mut o = SpecOverlay::new();
        o.write(Addr(0), 5);
        o.clear();
        o.flush_into(&mut m);
        assert_eq!(m.read(Addr(0)), 0);
    }

    #[test]
    fn overlay_len_tracks_distinct_addrs() {
        let mut o = SpecOverlay::new();
        o.write(Addr(0), 1);
        o.write(Addr(0), 2);
        o.write(Addr(8), 3);
        assert_eq!(o.len(), 2);
    }
}
