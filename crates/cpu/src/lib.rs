//! The tenways core model: an in-order-issue / out-of-order-completion
//! multicore with SC / TSO / RMO consistency enforcement, reactive
//! thread programs, fence speculation, and per-cycle waste accounting.
//!
//! Layering:
//!
//! * [`op`] — the instruction vocabulary and the [`ThreadProgram`]
//!   interface workloads implement.
//! * [`archmem`] — the functional value layer (timing and values are
//!   decoupled; see the module docs).
//! * [`consistency`] — the three memory models and their semantic
//!   predicates.
//! * `core` (re-exported as [`Core`]) — the pipeline: ROB, store buffer, enforcement rules, and the
//!   integration of [`tenways_core::SpecEngine`] (checkpoint, commit,
//!   rollback, backoff).
//! * [`account`] — the per-cycle stall-attribution buckets that feed the
//!   waste taxonomy.
//! * [`machine`] — the assembled simulator: cores + L1s + directory +
//!   fabric + memory.
//!
//! # Example
//!
//! ```rust
//! use tenways_cpu::{ConsistencyModel, Machine, MachineSpec, Op, ScriptProgram};
//! use tenways_sim::{Addr, MachineConfig};
//!
//! let cfg = MachineConfig::builder().cores(2).build().unwrap();
//! let spec = MachineSpec::baseline(ConsistencyModel::Tso).with_machine(cfg);
//! let programs: Vec<Box<dyn tenways_cpu::ThreadProgram>> = vec![
//!     Box::new(ScriptProgram::new(vec![Op::store(Addr(0x100), 7)])),
//!     Box::new(ScriptProgram::new(vec![Op::load(Addr(0x100))])),
//! ];
//! let mut machine = Machine::new(&spec, programs);
//! let summary = machine.run(100_000);
//! assert!(summary.finished);
//! assert_eq!(machine.mem().read(Addr(0x100)), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod archmem;
pub mod consistency;
mod core;
mod epoch;
pub mod machine;
pub mod op;
pub mod wake;

pub use crate::core::Core;
pub use archmem::{ArchMem, SpecOverlay};
pub use consistency::ConsistencyModel;
pub use machine::{Machine, MachineSpec, RunSummary, SchedMode};
pub use op::{FenceKind, MemTag, Op, RmwOp, ScriptProgram, ThreadProgram};
pub use tenways_core::{DrainCond, SpecConfig, SpecEngine, SpecMode};
