//! Per-cycle stall attribution: the bucket vocabulary of the waste
//! taxonomy.
//!
//! Every core cycle is charged to exactly one bucket (memory waits are
//! charged retroactively when the blocking operation completes and its
//! fill class is known). Bucket names are `&'static str` so they flow
//! through [`tenways_sim::StatSet`] without allocation.

use tenways_coherence::FillClass;

use crate::op::MemTag;

/// Bucket: the core retired at least one operation this cycle.
pub const BUSY: &str = "cyc.busy";
/// Bucket: pipeline stalled on pure compute latency at the ROB head.
pub const COMPUTE: &str = "cyc.compute";
/// Bucket: the thread finished; the core idles.
pub const IDLE_DONE: &str = "cyc.idle_done";
/// Bucket: ROB capacity exhausted.
pub const ROB_FULL: &str = "cyc.stall.rob_full";
/// Bucket: no free MSHR for a new miss.
pub const MSHR_FULL: &str = "cyc.stall.mshr_full";
/// Bucket: a speculative-store capacity cap blocked retirement (per-store
/// comparator designs only).
pub const SPEC_CAP: &str = "cyc.stall.spec_cap";
/// Bucket: a load or atomic waiting on an older in-flight same-address
/// operation from this core (a true data dependence, never speculated).
pub const SAME_ADDR_DEP: &str = "cyc.stall.same_addr";
/// Bucket: an honored fence counting down its configured execution
/// latency at the ROB head (the [`tenways_sim::AtomicsConfig`] fence
/// cost; zero-latency fences never land here).
pub const FENCE_EXEC: &str = "cyc.stall.fence_exec";
/// Bucket: unclassified (should stay near zero; a sanity check).
pub const OTHER: &str = "cyc.other";

/// The reason an operation could not issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// SC's every-op serialization.
    ScOrder,
    /// An honored explicit fence.
    Fence,
    /// An atomic's implicit full-fence semantics (TSO).
    Atomic,
    /// Store buffer full at retirement.
    SbFull,
}

/// Bucket for an ordering/capacity stall, refined by the op's tag.
pub fn stall_bucket(kind: StallKind, tag: MemTag) -> &'static str {
    match (kind, tag) {
        (StallKind::ScOrder, MemTag::Data) => "cyc.stall.sc.data",
        (StallKind::ScOrder, MemTag::Lock) => "cyc.stall.sc.lock",
        (StallKind::ScOrder, MemTag::Barrier) => "cyc.stall.sc.barrier",
        (StallKind::Fence, MemTag::Data) => "cyc.stall.fence.data",
        (StallKind::Fence, MemTag::Lock) => "cyc.stall.fence.lock",
        (StallKind::Fence, MemTag::Barrier) => "cyc.stall.fence.barrier",
        (StallKind::Atomic, MemTag::Data) => "cyc.stall.atomic.data",
        (StallKind::Atomic, MemTag::Lock) => "cyc.stall.atomic.lock",
        (StallKind::Atomic, MemTag::Barrier) => "cyc.stall.atomic.barrier",
        (StallKind::SbFull, MemTag::Data) => "cyc.stall.sb_full.data",
        (StallKind::SbFull, MemTag::Lock) => "cyc.stall.sb_full.lock",
        (StallKind::SbFull, MemTag::Barrier) => "cyc.stall.sb_full.barrier",
    }
}

/// Bucket for cycles spent waiting on a memory operation, refined by tag
/// and by where the data ultimately came from.
pub fn mem_bucket(tag: MemTag, class: FillClass) -> &'static str {
    match (tag, class) {
        (MemTag::Data, FillClass::L1Hit) => "cyc.mem.data.l1",
        (MemTag::Data, FillClass::L2Hit) => "cyc.mem.data.l2",
        (MemTag::Data, FillClass::DramCold) => "cyc.mem.data.cold",
        (MemTag::Data, FillClass::DramCapacity) => "cyc.mem.data.capacity",
        (MemTag::Data, FillClass::Coherence) => "cyc.mem.data.coherence",
        (MemTag::Lock, FillClass::L1Hit) => "cyc.mem.lock.l1",
        (MemTag::Lock, FillClass::L2Hit) => "cyc.mem.lock.l2",
        (MemTag::Lock, FillClass::DramCold) => "cyc.mem.lock.cold",
        (MemTag::Lock, FillClass::DramCapacity) => "cyc.mem.lock.capacity",
        (MemTag::Lock, FillClass::Coherence) => "cyc.mem.lock.coherence",
        (MemTag::Barrier, FillClass::L1Hit) => "cyc.mem.barrier.l1",
        (MemTag::Barrier, FillClass::L2Hit) => "cyc.mem.barrier.l2",
        (MemTag::Barrier, FillClass::DramCold) => "cyc.mem.barrier.cold",
        (MemTag::Barrier, FillClass::DramCapacity) => "cyc.mem.barrier.capacity",
        (MemTag::Barrier, FillClass::Coherence) => "cyc.mem.barrier.coherence",
    }
}

/// Bucket for memory waits whose completion never arrived before the run
/// ended (should be tiny).
pub const MEM_UNRESOLVED: &str = "cyc.mem.unresolved";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bucket_name_is_distinct() {
        let mut names = vec![
            BUSY,
            COMPUTE,
            IDLE_DONE,
            ROB_FULL,
            MSHR_FULL,
            SPEC_CAP,
            SAME_ADDR_DEP,
            FENCE_EXEC,
            OTHER,
            MEM_UNRESOLVED,
        ];
        for kind in [
            StallKind::ScOrder,
            StallKind::Fence,
            StallKind::Atomic,
            StallKind::SbFull,
        ] {
            for tag in [MemTag::Data, MemTag::Lock, MemTag::Barrier] {
                names.push(stall_bucket(kind, tag));
            }
        }
        for tag in [MemTag::Data, MemTag::Lock, MemTag::Barrier] {
            for class in [
                FillClass::L1Hit,
                FillClass::L2Hit,
                FillClass::DramCold,
                FillClass::DramCapacity,
                FillClass::Coherence,
            ] {
                names.push(mem_bucket(tag, class));
            }
        }
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate bucket names");
    }

    #[test]
    fn buckets_share_the_cyc_prefix() {
        assert!(stall_bucket(StallKind::Fence, MemTag::Lock).starts_with("cyc."));
        assert!(mem_bucket(MemTag::Data, FillClass::DramCold).starts_with("cyc."));
        assert!(BUSY.starts_with("cyc."));
    }
}
