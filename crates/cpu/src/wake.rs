//! Deterministic wake-time tracking for the component-granular scheduler:
//! a bucketed timing wheel with a binary-heap overflow.
//!
//! [`WakeWheel`] maps a small, fixed population of components (fabric,
//! directory banks, core complexes) to the next cycle each is due to tick.
//! Near-term wakes (within [`SLOTS`] cycles of the wheel's base) land in a
//! circular slot array; far wakes (long DRAM round-trips, adaptive-backoff
//! countdowns) go to a min-heap so an empty window is skipped in O(log n)
//! instead of cycle-by-cycle.
//!
//! Determinism contract:
//!
//! * **Authoritative array.** `wake[comp]` is the single source of truth;
//!   slot and heap entries are hints, validated lazily (`entry.cycle ==
//!   wake[comp]`) and discarded when stale. Rescheduling never searches.
//! * **Tie-break by component index.** [`take_due`](WakeWheel::take_due)
//!   returns every component due at `t` sorted by its fixed index, so
//!   simultaneous wakes always tick in the machine's canonical order
//!   (fabric → directory banks → core complexes) and runs stay
//!   bit-for-bit reproducible.
//! * **Monotonicity.** Wake times are only ever set at or after the
//!   wheel's base (the last drained cycle); the debug build asserts it.

/// Slots in the near-term window. Covers L1 hit latencies, NoC hops and
/// directory latencies without touching the heap; anything longer (DRAM)
/// overflows. Must be a power of two so the modulo is a mask.
const SLOTS: usize = 64;

/// Sentinel wake time for a parked component (no self-scheduled work).
pub const NEVER: u64 = u64::MAX;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bucketed timing wheel over a fixed set of component indices.
#[derive(Debug)]
pub struct WakeWheel {
    /// Authoritative next-wake cycle per component (`NEVER` = parked).
    wake: Vec<u64>,
    /// Near-term buckets: entries `(cycle, comp)` with `cycle` in
    /// `[base, base + SLOTS)` live in `slots[cycle % SLOTS]`.
    slots: Vec<Vec<(u64, u32)>>,
    /// Far wakes, min-ordered by `(cycle, comp)`.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// Earliest cycle representable in the slot window; advanced by
    /// [`take_due`](Self::take_due).
    base: u64,
}

impl WakeWheel {
    /// A wheel for `comps` components, all initially due at `first` (the
    /// first simulated cycle: every component ticks once before any can
    /// prove itself idle).
    pub fn new(comps: usize, first: u64) -> Self {
        let mut wheel = WakeWheel {
            wake: vec![NEVER; comps],
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            base: first,
        };
        for comp in 0..comps as u32 {
            wheel.set(comp, first);
        }
        wheel
    }

    /// The authoritative wake time of `comp` (`NEVER` when parked).
    pub fn wake_of(&self, comp: u32) -> u64 {
        self.wake[comp as usize]
    }

    /// Schedules (or reschedules) `comp` to wake at `at`. A previous
    /// pending entry is not searched for — it goes stale and is discarded
    /// when encountered.
    pub fn set(&mut self, comp: u32, at: u64) {
        debug_assert!(at >= self.base, "wake {at} before wheel base {}", self.base);
        self.wake[comp as usize] = at;
        if at == NEVER {
            return;
        }
        if at - self.base < SLOTS as u64 {
            self.slots[(at % SLOTS as u64) as usize].push((at, comp));
        } else {
            self.overflow.push(Reverse((at, comp)));
        }
    }

    /// Parks `comp`: no self-scheduled wake until [`set`](Self::set) again.
    pub fn park(&mut self, comp: u32) {
        self.wake[comp as usize] = NEVER;
    }

    /// Earliest cycle at which any component is due, or `None` when every
    /// component is parked. Ring-scans the window outward from `base` and
    /// stops at the first hit; stale entries are dropped as they surface.
    pub fn next_due(&mut self) -> Option<u64> {
        // Purge stale overflow tops so the heap min is a real wake.
        while let Some(&Reverse((cy, comp))) = self.overflow.peek() {
            if self.wake[comp as usize] == cy {
                break;
            }
            self.overflow.pop();
        }
        let heap_best = self.overflow.peek().map_or(NEVER, |&Reverse((cy, _))| cy);
        // A valid slot entry always satisfies `cy in [base, base+SLOTS)`
        // (pushes honour the window and `base` only grows), and slot
        // `cy % SLOTS` holds exactly one in-window cycle — so the slot at
        // ring offset `k` can only hold valid entries for `base + k`, and
        // the first non-empty slot in ring order is the window minimum.
        // In the common dense case (everything due next cycle) this probes
        // one or two slots instead of all of them.
        let wake = &self.wake;
        for k in 0..SLOTS as u64 {
            let cy = self.base + k;
            if cy >= heap_best {
                break;
            }
            let slot = &mut self.slots[(cy % SLOTS as u64) as usize];
            if slot.is_empty() {
                continue;
            }
            slot.retain(|&(c, comp)| c == cy && wake[comp as usize] == c);
            if !slot.is_empty() {
                return Some(cy);
            }
        }
        (heap_best != NEVER).then_some(heap_best)
    }

    /// Collects every component due exactly at `t` into `out`, sorted by
    /// component index (the deterministic tie-break) and deduplicated,
    /// then advances the window base to `t`. Components stay scheduled in
    /// `wake` until the caller re-[`set`](Self::set)s or
    /// [`park`](Self::park)s them after ticking.
    ///
    /// `t` must be the value returned by [`next_due`](Self::next_due) (no
    /// due component may be skipped past).
    pub fn take_due(&mut self, t: u64, out: &mut Vec<u32>) {
        debug_assert!(t >= self.base, "due cycle {t} before base {}", self.base);
        out.clear();
        let wake = &self.wake;
        let slot = &mut self.slots[(t % SLOTS as u64) as usize];
        slot.retain(|&(cy, comp)| {
            if cy == t && wake[comp as usize] == t {
                out.push(comp);
            }
            cy != t && wake[comp as usize] == cy
        });
        while let Some(&Reverse((cy, comp))) = self.overflow.peek() {
            if cy > t {
                break;
            }
            self.overflow.pop();
            if self.wake[comp as usize] == cy {
                debug_assert_eq!(cy, t, "overflow wake {cy} skipped past {t}");
                out.push(comp);
            }
        }
        out.sort_unstable();
        out.dedup();
        self.base = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut WakeWheel) -> Vec<(u64, Vec<u32>)> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        while let Some(t) = wheel.next_due() {
            wheel.take_due(t, &mut due);
            for &c in &due {
                wheel.park(c);
            }
            out.push((t, due.clone()));
        }
        out
    }

    #[test]
    fn all_components_start_due_at_first_cycle() {
        let mut w = WakeWheel::new(3, 1);
        assert_eq!(w.next_due(), Some(1));
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        assert_eq!(due, vec![0, 1, 2], "ascending component order");
    }

    #[test]
    fn near_and_far_wakes_interleave_in_time_order() {
        let mut w = WakeWheel::new(4, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        w.set(0, 5); // in-window
        w.set(1, 5_000); // overflow (DRAM-scale)
        w.set(2, 7); // in-window
        w.park(3);
        assert_eq!(
            drain(&mut w),
            vec![(5, vec![0]), (7, vec![2]), (5_000, vec![1])]
        );
    }

    #[test]
    fn reschedule_makes_old_entries_stale() {
        let mut w = WakeWheel::new(2, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        w.set(0, 10);
        w.set(0, 400); // pushed out: the slot entry at 10 is now stale
        w.set(1, 4_000);
        w.set(1, 12); // pulled in: the overflow entry at 4000 is now stale
        assert_eq!(drain(&mut w), vec![(12, vec![1]), (400, vec![0])]);
    }

    #[test]
    fn simultaneous_wakes_tie_break_by_component_index() {
        let mut w = WakeWheel::new(5, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        // Schedule out of index order, mixing window and overflow (the
        // overflow entry collapses into the same cycle via reschedule).
        w.set(3, 9);
        w.set(1, 9);
        w.set(4, 9_999);
        w.set(4, 9);
        w.set(0, 9);
        w.park(2);
        w.set(0, 9); // duplicate entry for one comp must dedup
        assert_eq!(drain(&mut w), vec![(9, vec![0, 1, 3, 4])]);
    }

    #[test]
    fn window_advances_across_many_wraps() {
        let mut w = WakeWheel::new(1, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        let mut at = 1;
        for step in [1, SLOTS as u64 - 1, SLOTS as u64, 3 * SLOTS as u64 + 7, 1] {
            at += step;
            w.set(0, at);
            assert_eq!(w.next_due(), Some(at));
            w.take_due(at, &mut due);
            assert_eq!(due, vec![0]);
        }
    }

    #[test]
    fn parked_wheel_reports_no_due_cycle() {
        let mut w = WakeWheel::new(2, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        w.park(0);
        w.park(1);
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn window_boundary_splits_slot_and_overflow_paths() {
        // `base + SLOTS - 1` is the last representable slot cycle;
        // `base + SLOTS` must take the heap path — and both must fire at
        // the right cycle in the right order.
        let mut w = WakeWheel::new(2, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        let base = 1;
        w.set(0, base + SLOTS as u64); // first cycle past the window: heap
        w.set(1, base + SLOTS as u64 - 1); // last in-window cycle: slot
        assert_eq!(
            drain(&mut w),
            vec![
                (base + SLOTS as u64 - 1, vec![1]),
                (base + SLOTS as u64, vec![0]),
            ]
        );
    }

    #[test]
    fn stale_slot_entry_is_skipped_not_served() {
        // Lazy deletion in the ring: a rescheduled component's old slot
        // entry surfaces during next_due's scan and must be dropped, not
        // reported as a due cycle.
        let mut w = WakeWheel::new(1, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        w.set(0, 10);
        w.set(0, 5); // pulled in: entry at 10 is now stale
        assert_eq!(w.next_due(), Some(5));
        w.take_due(5, &mut due);
        assert_eq!(due, vec![0]);
        // The stale entry at 10 is still physically in its slot; the next
        // real wake is later, so the scan must purge it rather than wake
        // the component early.
        w.set(0, 12);
        assert_eq!(w.next_due(), Some(12));
        w.take_due(12, &mut due);
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn stale_overflow_top_is_purged_not_served() {
        // Lazy deletion in the heap: a far wake pulled into the window
        // leaves its heap entry behind; once the component is parked the
        // stale heap top must not resurrect a due cycle.
        let mut w = WakeWheel::new(1, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        w.set(0, 5_000); // heap
        w.set(0, 5); // pulled in: heap entry now stale
        assert_eq!(w.next_due(), Some(5));
        w.take_due(5, &mut due);
        assert_eq!(due, vec![0]);
        w.park(0);
        assert_eq!(w.next_due(), None, "stale heap top must be purged");
    }

    #[test]
    fn take_due_merges_overflow_and_window_sources_in_index_order() {
        // Two components land on the same cycle via different structures:
        // comp 1 was scheduled while the cycle was far away (heap), comp 4
        // after the base advanced near it (slot). take_due must merge both
        // sources and still report ascending component order, with the
        // slot-sourced higher index not jumping the queue.
        let mut w = WakeWheel::new(5, 1);
        let mut due = Vec::new();
        w.take_due(1, &mut due);
        w.set(1, 200); // 200 - 1 >= SLOTS: heap
        w.set(0, 150); // heap; used to advance the base
        w.park(2);
        w.park(3);
        w.park(4);
        assert_eq!(w.next_due(), Some(150));
        w.take_due(150, &mut due);
        assert_eq!(due, vec![0]);
        w.park(0);
        w.set(4, 200); // 200 - 150 < SLOTS: slot
        assert_eq!(w.next_due(), Some(200));
        w.take_due(200, &mut due);
        assert_eq!(due, vec![1, 4], "heap comp 1 before slot comp 4");
    }
}
