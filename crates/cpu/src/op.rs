//! The instruction vocabulary ([`Op`]) and the reactive program interface
//! ([`ThreadProgram`]).
//!
//! Workloads are *reactive state machines*, not instruction traces: the
//! core asks for the next operation and feeds back the values of loads and
//! atomics the program asked to consume. This is what lets spin locks,
//! barriers and data-dependent traversals emerge from the simulated memory
//! system instead of being scripted around it.

use tenways_sim::Addr;

/// Why a memory operation exists, for stall attribution.
///
/// A cycle lost to a contended lock and a cycle lost to a data miss are
/// both "memory waits" to the pipeline; the tag lets the waste taxonomy
/// tell them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTag {
    /// Ordinary program data.
    Data,
    /// Lock word accesses (acquire spins, releases).
    Lock,
    /// Barrier counters and generation flags.
    Barrier,
}

impl MemTag {
    /// Stable label for stats.
    pub fn label(self) -> &'static str {
        match self {
            MemTag::Data => "data",
            MemTag::Lock => "lock",
            MemTag::Barrier => "barrier",
        }
    }
}

/// Fence strength, with release-consistency semantics under RMO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// Order everything before against everything after.
    Full,
    /// Later operations wait until all earlier loads complete (lock
    /// acquisition).
    Acquire,
    /// Later stores wait until all earlier operations complete (lock
    /// release).
    Release,
}

/// A read-modify-write function applied atomically at completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `new = old + n`; returns `old`.
    FetchAdd(u64),
    /// `new = v`; returns `old`.
    Swap(u64),
    /// `if old == expected { new = desired }`; returns `old`.
    Cas {
        /// Value the location must hold for the exchange to happen.
        expected: u64,
        /// Value stored on success.
        desired: u64,
    },
}

impl RmwOp {
    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            RmwOp::FetchAdd(n) => old.wrapping_add(n),
            RmwOp::Swap(v) => v,
            RmwOp::Cas { expected, desired } => {
                if old == expected {
                    desired
                } else {
                    old
                }
            }
        }
    }
}

/// One dynamic operation emitted by a [`ThreadProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `cycles` of pure computation (pipelined; models IPC between memory
    /// operations).
    Compute(u64),
    /// A load. If `consume` is set the program's next operation depends on
    /// the loaded value: fetch stalls until the load completes and the
    /// value is passed to [`ThreadProgram::next_op`].
    Load {
        /// Byte address.
        addr: Addr,
        /// Stall-attribution tag.
        tag: MemTag,
        /// Whether the program needs the value to continue.
        consume: bool,
    },
    /// A store of `value`.
    Store {
        /// Byte address.
        addr: Addr,
        /// Value stored (functional layer).
        value: u64,
        /// Stall-attribution tag.
        tag: MemTag,
    },
    /// A memory fence.
    Fence(FenceKind),
    /// An atomic read-modify-write; returns the *old* value when consumed.
    Rmw {
        /// Byte address.
        addr: Addr,
        /// The atomic function.
        rmw: RmwOp,
        /// Stall-attribution tag.
        tag: MemTag,
        /// Whether the program needs the old value to continue.
        consume: bool,
    },
}

impl Op {
    /// Whether the op touches memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. } | Op::Rmw { .. })
    }

    /// The address touched, if any.
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Op::Load { addr, .. } | Op::Store { addr, .. } | Op::Rmw { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// Whether the program asked to consume this op's result.
    pub fn consumes(&self) -> bool {
        matches!(
            self,
            Op::Load { consume: true, .. } | Op::Rmw { consume: true, .. }
        )
    }

    /// The attribution tag (Data for non-memory ops).
    pub fn tag(&self) -> MemTag {
        match *self {
            Op::Load { tag, .. } | Op::Store { tag, .. } | Op::Rmw { tag, .. } => tag,
            _ => MemTag::Data,
        }
    }

    /// Convenience: an untagged, unconsumed data load.
    pub fn load(addr: Addr) -> Op {
        Op::Load {
            addr,
            tag: MemTag::Data,
            consume: false,
        }
    }

    /// Convenience: an untagged data store.
    pub fn store(addr: Addr, value: u64) -> Op {
        Op::Store {
            addr,
            value,
            tag: MemTag::Data,
        }
    }
}

/// A reactive per-thread program.
///
/// The core calls [`next_op`](Self::next_op) whenever it has a fetch slot;
/// `last_value` carries the result of the most recent `consume`-marked
/// operation (and is `None` otherwise). Returning `None` ends the thread.
///
/// Programs must be deterministic state machines and must implement
/// [`snapshot`](Self::snapshot): the fence-speculation engine checkpoints
/// the program at each speculation point and restores the snapshot on
/// rollback, re-executing from there.
///
/// Programs are `Send` so the epoch-parallel scheduler can move a core
/// (and the program it owns) onto a worker thread; they are still driven
/// by exactly one thread at a time.
pub trait ThreadProgram: std::fmt::Debug + Send {
    /// Produces the next operation, given the consumed value if the
    /// previous op requested one.
    fn next_op(&mut self, last_value: Option<u64>) -> Option<Op>;

    /// A deep copy of the current program state (for checkpointing).
    fn snapshot(&self) -> Box<dyn ThreadProgram>;

    /// A short name for reports.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A scripted program that plays a fixed operation sequence (tests and
/// microbenchmarks).
#[derive(Debug, Clone)]
pub struct ScriptProgram {
    ops: std::sync::Arc<[Op]>,
    pos: usize,
    /// Values received for consume ops, observable by tests.
    pub consumed: Vec<u64>,
}

impl ScriptProgram {
    /// Creates a program that emits `ops` in order, then finishes.
    pub fn new(ops: impl Into<Vec<Op>>) -> Self {
        ScriptProgram {
            ops: ops.into().into(),
            pos: 0,
            consumed: Vec::new(),
        }
    }
}

impl ThreadProgram for ScriptProgram {
    fn next_op(&mut self, last_value: Option<u64>) -> Option<Op> {
        if let Some(v) = last_value {
            self.consumed.push(v);
        }
        let op = self.ops.get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwOp::FetchAdd(3).apply(4), 7);
        assert_eq!(RmwOp::Swap(9).apply(4), 9);
        assert_eq!(
            RmwOp::Cas {
                expected: 4,
                desired: 1
            }
            .apply(4),
            1
        );
        assert_eq!(
            RmwOp::Cas {
                expected: 5,
                desired: 1
            }
            .apply(4),
            4
        );
        assert_eq!(RmwOp::FetchAdd(1).apply(u64::MAX), 0, "wrapping");
    }

    #[test]
    fn op_classification() {
        let l = Op::load(Addr(8));
        assert!(l.is_mem());
        assert_eq!(l.addr(), Some(Addr(8)));
        assert!(!l.consumes());
        assert_eq!(l.tag(), MemTag::Data);
        assert!(!Op::Compute(3).is_mem());
        assert_eq!(Op::Fence(FenceKind::Full).addr(), None);
        let c = Op::Rmw {
            addr: Addr(0),
            rmw: RmwOp::Swap(1),
            tag: MemTag::Lock,
            consume: true,
        };
        assert!(c.consumes());
        assert_eq!(c.tag(), MemTag::Lock);
    }

    #[test]
    fn script_program_plays_and_finishes() {
        let mut p = ScriptProgram::new(vec![Op::Compute(1), Op::load(Addr(0))]);
        assert_eq!(p.next_op(None), Some(Op::Compute(1)));
        assert_eq!(p.next_op(None), Some(Op::load(Addr(0))));
        assert_eq!(p.next_op(None), None);
        assert_eq!(p.next_op(None), None, "stays finished");
    }

    #[test]
    fn script_program_records_consumed_values() {
        let mut p = ScriptProgram::new(vec![Op::Compute(1)]);
        p.next_op(Some(42));
        assert_eq!(p.consumed, vec![42]);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut p = ScriptProgram::new(vec![Op::Compute(1), Op::Compute(2)]);
        p.next_op(None);
        let snap = p.snapshot();
        p.next_op(None);
        // Restore from snapshot: continues from op index 1.
        let mut restored = snap;
        assert_eq!(restored.next_op(None), Some(Op::Compute(2)));
    }

    #[test]
    fn tag_labels() {
        assert_eq!(MemTag::Data.label(), "data");
        assert_eq!(MemTag::Lock.label(), "lock");
        assert_eq!(MemTag::Barrier.label(), "barrier");
    }
}
