//! The core pipeline model: [`Core`].
//!
//! An in-order-issue, out-of-order-completion core with a reorder buffer, a
//! FIFO store buffer, per-model consistency enforcement, and integrated
//! fence speculation (the [`tenways_core::SpecEngine`]).
//!
//! # Pipeline shape
//!
//! * **Fetch/issue** (in order, `width` per cycle): the next op is taken
//!   from the [`ThreadProgram`], staged, and issued when its consistency
//!   rule allows. A blocked stage stalls fetch — which is exactly how
//!   consistency enforcement costs cycles. When the block is an *ordering*
//!   stall (not a data or resource hazard), the speculation engine may
//!   elect to checkpoint and issue anyway.
//! * **Completion** (out of order): loads and atomics finish when the L1
//!   reports them; compute finishes after its latency.
//! * **Retire** (in order, `width` per cycle): completed ops pop from the
//!   ROB head; stores move into the store buffer at retirement and drain to
//!   the L1 one at a time (preserving TSO store order).
//!
//! Values live in the functional layer: loads resolve against the store
//! buffer, then the speculative overlay, then [`ArchMem`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tenways_coherence::{AccessKind, FillClass, L1Controller, ReqId, RequestError, SpecMark};
use tenways_core::{DrainCond, SpecConfig, SpecEngine};
use tenways_noc::Fabric;
use tenways_sim::trace::{TraceCategory, Tracer};
use tenways_sim::{
    Addr, AtomicsConfig, BlockGeometry, CoreId, Cycle, Histogram, MachineConfig, StatSet,
};

use crate::account::{self, StallKind};
use crate::archmem::{MemBackend, SpecOverlay};
use crate::consistency::ConsistencyModel;
use crate::op::{FenceKind, MemTag, Op, ThreadProgram};

type CoherenceMsg = tenways_coherence::Msg;

#[derive(Debug)]
struct Slot {
    seq: u64,
    op: Op,
    /// Completion time; the slot is complete once `done <= now`.
    done: Option<Cycle>,
    /// Issued during a speculative epoch.
    spec: bool,
    /// Result value (loads / atomics).
    value: Option<u64>,
    /// Cycles this op blocked the ROB head (attributed at completion).
    waited: u64,
    /// The fill class of the memory completion, for attribution.
    class: Option<FillClass>,
}

impl Slot {
    fn complete(&self, now: Cycle) -> bool {
        self.done.is_some_and(|d| d <= now)
    }
}

#[derive(Debug)]
struct SbEntry {
    seq: u64,
    addr: Addr,
    value: u64,
    tag: MemTag,
    spec: bool,
    req: Option<ReqId>,
}

#[derive(Debug)]
struct Checkpoint {
    program: Box<dyn ThreadProgram>,
    replay_op: Op,
    start_seq: u64,
}

/// Outcome of the same-address ROB scan for a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SameAddrHazard {
    /// No older same-address producer in flight.
    Clear,
    /// Forward this value from an older store.
    Forward(u64),
    /// An older atomic to the address is still in flight: wait.
    Wait,
}

/// What blocked the core this cycle, noted during issue/retire and consumed
/// by the end-of-cycle accountant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TickBlock {
    None,
    Stall(StallKind, MemTag),
    RobFull,
    MshrFull,
    SpecCap,
    /// Same-address dependence on an older in-flight atomic or store.
    SameAddrDep,
}

/// One simulated core: pipeline + consistency enforcement + speculation.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    model: ConsistencyModel,
    width: usize,
    rob_cap: usize,
    sb_cap: usize,
    hit_latency: u64,
    atomics: AtomicsConfig,
    geometry: BlockGeometry,

    program: Box<dyn ThreadProgram>,
    fetch_done: bool,
    staged: Option<(u64, Op)>,
    /// Sequence number of a consume op whose value fetch is waiting on.
    awaiting: Option<u64>,
    pending_value: Option<u64>,
    next_seq: u64,

    rob: VecDeque<Slot>,
    sb: VecDeque<SbEntry>,
    inflight_rob: BTreeMap<u64, u64>,
    inflight_sb: BTreeMap<u64, u64>,
    doomed: BTreeSet<u64>,
    next_req: u64,

    engine: SpecEngine,
    checkpoint: Option<Checkpoint>,
    overlay: SpecOverlay,
    clear_backoff_on: Option<u64>,

    block: TickBlock,
    /// Any non-stat state changed this cycle (op moved, flag flipped,
    /// message consumed). A cycle with no progress anywhere in the machine
    /// is a template for fast-forward replay.
    tick_progress: bool,
    /// Refused `request_speculation` calls this cycle (0 or 1: a refusal
    /// aborts the issue attempt, which ends the fetch loop).
    tick_refusals: u32,
    /// Granted epoch-*extension* calls this cycle whose op then failed to
    /// issue; replayed per skipped cycle.
    tick_ext_grants: u32,
    /// The store-buffer drain attempt failed on MSHRs this cycle.
    tick_sb_drain_stall: bool,
    /// Speculatively retired ops awaiting epoch commit (discarded on
    /// rollback so `retired_ops` only counts architecturally committed
    /// work).
    spec_retired_pending: u64,
    /// A speculative store overflowed the per-store tracking cap: the
    /// epoch must abort (capacity violation) or it deadlocks its own
    /// commit condition.
    overflow_abort: bool,
    acct: StatSet,
    sb_occ_hist: Histogram,
    retired_ops: u64,
    done_at: Option<Cycle>,

    tracer: Tracer,
    /// Open consistency-stall span: (kind, consecutive cycles so far).
    stall_run: Option<(StallKind, u64)>,
}

impl Core {
    /// Creates a core running `program` under `model`, with speculation
    /// configured by `spec`.
    pub fn new(
        id: CoreId,
        cfg: &MachineConfig,
        model: ConsistencyModel,
        spec: SpecConfig,
        atomics: AtomicsConfig,
        program: Box<dyn ThreadProgram>,
    ) -> Self {
        Core {
            id,
            model,
            width: cfg.width,
            rob_cap: cfg.rob_entries,
            sb_cap: cfg.sb_entries,
            hit_latency: cfg.l1_hit_latency,
            atomics,
            geometry: cfg.block_geometry(),
            program,
            fetch_done: false,
            staged: None,
            awaiting: None,
            pending_value: None,
            next_seq: 0,
            rob: VecDeque::new(),
            sb: VecDeque::new(),
            inflight_rob: BTreeMap::new(),
            inflight_sb: BTreeMap::new(),
            doomed: BTreeSet::new(),
            next_req: 0,
            engine: SpecEngine::new(spec),
            checkpoint: None,
            overlay: SpecOverlay::new(),
            clear_backoff_on: None,
            block: TickBlock::None,
            tick_progress: false,
            tick_refusals: 0,
            tick_ext_grants: 0,
            tick_sb_drain_stall: false,
            spec_retired_pending: 0,
            overflow_abort: false,
            acct: StatSet::new(),
            sb_occ_hist: Histogram::new(65, 1),
            retired_ops: 0,
            done_at: None,
            tracer: Tracer::disabled(),
            stall_run: None,
        }
    }

    /// Attaches an event tracer; consistency stalls become spans and
    /// rollbacks become instants on this core's timeline row.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The consistency model being enforced.
    pub fn model(&self) -> ConsistencyModel {
        self.model
    }

    /// Whether the thread has finished and all its effects have drained.
    pub fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    /// Cycle at which the thread completed, if it has.
    pub fn done_at(&self) -> Option<Cycle> {
        self.done_at
    }

    /// Dynamic operations retired so far.
    pub fn retired_ops(&self) -> u64 {
        self.retired_ops
    }

    /// The cycle-attribution buckets (sums to cycles ticked while active).
    pub fn accounting(&self) -> &StatSet {
        &self.acct
    }

    /// Store-buffer occupancy distribution (sampled every cycle).
    pub fn sb_occupancy(&self) -> &Histogram {
        &self.sb_occ_hist
    }

    /// The speculation engine (stats, histograms).
    pub fn engine(&self) -> &SpecEngine {
        &self.engine
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    // ---------------- condition predicates ----------------

    fn no_stores_before(&self, now: Cycle, seq: u64) -> bool {
        !self
            .rob
            .iter()
            .any(|s| s.seq < seq && matches!(s.op, Op::Store { .. }) && !s.complete(now))
            && !self.sb.iter().any(|e| e.seq < seq)
    }

    fn no_loads_before(&self, now: Cycle, seq: u64) -> bool {
        !self.rob.iter().any(|s| {
            s.seq < seq && matches!(s.op, Op::Load { .. } | Op::Rmw { .. }) && !s.complete(now)
        })
    }

    fn op_done(&self, now: Cycle, seq: u64) -> bool {
        match self.rob.iter().find(|s| s.seq == seq) {
            Some(s) => s.complete(now),
            None => true, // already retired
        }
    }

    fn cond_holds(&self, now: Cycle, cond: &DrainCond) -> bool {
        match *cond {
            DrainCond::NoStoresBefore(s) => self.no_stores_before(now, s),
            DrainCond::NoLoadsBefore(s) => self.no_loads_before(now, s),
            DrainCond::OpDone(s) => self.op_done(now, s),
        }
    }

    /// Same-address hazard resolution for a load at `seq`: scan ROB entries
    /// older than `seq` to the same address, youngest first.
    ///
    /// * youngest match is a completed or pending `Store` — its value is
    ///   known: forward it;
    /// * youngest match is an incomplete `Rmw` — the load must wait (its
    ///   value is unknowable until the atomic completes);
    /// * youngest match is a completed `Rmw` — memory already reflects it
    ///   (or the overlay does): no forwarding needed.
    fn same_addr_hazard(&self, now: Cycle, seq: u64, addr: Addr) -> SameAddrHazard {
        for s in self.rob.iter().rev() {
            if s.seq >= seq || s.op.addr() != Some(addr) {
                continue;
            }
            match s.op {
                Op::Store { value, .. } => return SameAddrHazard::Forward(value),
                Op::Rmw { .. } if !s.complete(now) => return SameAddrHazard::Wait,
                _ => return SameAddrHazard::Clear,
            }
        }
        SameAddrHazard::Clear
    }

    /// Whether an atomic at `seq` must wait for an older in-flight
    /// same-address ROB entry (its global read must observe them), or for
    /// a buffered same-address store to drain. The store-buffer half is
    /// per-location coherence, not ordering: an RMW that issued over a
    /// buffered store to the same word would write memory first and then
    /// be silently overwritten when the older store drains. Real machines
    /// never allow this (x86 drains the buffer before locked ops; LL/SC
    /// fails when the reservation is lost), so the gate applies under
    /// every consistency model.
    fn rmw_same_addr_blocked(&self, now: Cycle, seq: u64, addr: Addr) -> bool {
        self.rob.iter().any(|s| {
            s.seq < seq
                && s.op.addr() == Some(addr)
                && matches!(s.op, Op::Store { .. } | Op::Rmw { .. })
                && !s.complete(now)
        }) || self.sb.iter().any(|e| e.addr == addr)
    }

    /// The youngest incomplete Rmw older than `seq`, if any (TSO load rule).
    fn older_incomplete_rmw(&self, now: Cycle, seq: u64) -> Option<u64> {
        self.rob
            .iter()
            .filter(|s| s.seq < seq && matches!(s.op, Op::Rmw { .. }) && !s.complete(now))
            .map(|s| s.seq)
            .next_back()
    }

    // ---------------- main tick ----------------

    /// Advances the core one cycle against its L1 and the shared
    /// architectural memory. Call after the L1's own tick.
    ///
    /// Returns `true` if any non-stat state changed (an op completed,
    /// retired, issued, or a flag flipped). A `false` cycle is a pure
    /// waiting cycle whose side effects repeat identically until the next
    /// event — the contract fast-forward relies on.
    pub fn tick<M: MemBackend>(
        &mut self,
        now: Cycle,
        l1: &mut L1Controller,
        fabric: &mut Fabric<CoherenceMsg>,
        mem: &mut M,
    ) -> bool {
        if self.done_at.is_some() {
            return false;
        }
        self.block = TickBlock::None;
        self.tick_progress = false;
        self.tick_refusals = 0;
        self.tick_ext_grants = 0;
        self.tick_sb_drain_stall = false;

        self.process_completions(now, l1, fabric, mem);
        self.process_violations(now, l1, fabric);
        self.try_commit(now, l1, mem);
        let retired = self.retire(now, mem);
        if retired > 0 {
            self.tick_progress = true;
        }
        if std::mem::take(&mut self.overflow_abort) && self.engine.on_violation(now) {
            self.tick_progress = true;
            self.acct.bump("core.spec_cap_aborts");
            self.rollback(now, l1, fabric);
        }
        self.fetch_and_issue(now, l1, fabric);
        self.drain_sb(now, l1, fabric);
        self.try_commit(now, l1, mem);
        self.finish_check(now, l1, mem);
        self.account(now, retired);
        self.sb_occ_hist.record(self.sb.len() as u64);
        self.tick_progress
    }

    /// Earliest future cycle at which this core can make progress on its
    /// own: the next scheduled ROB completion (compute latency, forwarded
    /// hit) or the end of the engine's adaptive-suppression countdown.
    /// Ops waiting on the memory system surface through the L1 / fabric /
    /// directory horizons instead. `None` once the thread is done (or when
    /// the core is blocked purely on external events).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.done_at.is_some() {
            return None;
        }
        let mut horizon: Option<Cycle> = None;
        for s in &self.rob {
            if let Some(d) = s.done {
                if d > now {
                    horizon = Some(horizon.map_or(d, |h: Cycle| h.min(d)));
                }
            }
        }
        if self.tick_refusals > 0 {
            // A blocked op re-requests speculation every cycle; the
            // suppression counter grants it after `k` more refusals.
            if let Some(k) = self.engine.refusal_horizon() {
                let at = now.after(k.saturating_add(1));
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
        }
        horizon
    }

    /// Replays this cycle's waiting-side-effects over `gap` skipped
    /// quiescent cycles: accounting buckets, head-blocked attribution,
    /// store-buffer occupancy samples, engine refusals/extensions, and the
    /// store-drain stall counter. Must only be called right after a tick
    /// that reported no progress.
    pub fn skip_idle(&mut self, now: Cycle, gap: u64) {
        if self.done_at.is_some() || gap == 0 {
            return;
        }
        self.account_n(now, 0, gap);
        self.sb_occ_hist.record_n(self.sb.len() as u64, gap);
        if self.tick_refusals > 0 {
            debug_assert_eq!(self.tick_refusals, 1, "one refusal ends the issue attempt");
            self.engine.skip_idle_refusals(gap);
        }
        if self.tick_ext_grants > 0 {
            self.engine
                .skip_idle_extensions(u64::from(self.tick_ext_grants).saturating_mul(gap));
        }
        if self.tick_sb_drain_stall {
            self.acct.bump_by("core.sb_drain_mshr_stalls", gap);
        }
    }

    fn process_completions<M: MemBackend>(
        &mut self,
        now: Cycle,
        l1: &mut L1Controller,
        fabric: &mut Fabric<CoherenceMsg>,
        mem: &mut M,
    ) {
        let completions = l1.take_completions();
        if !completions.is_empty() {
            self.tick_progress = true;
        }
        for c in completions {
            let rid = c.req.0;
            if self.doomed.remove(&rid) {
                continue;
            }
            if let Some(seq) = self.inflight_rob.remove(&rid) {
                let Some(idx) = self.rob.iter().position(|s| s.seq == seq) else {
                    continue;
                };
                let (op, spec) = (self.rob[idx].op, self.rob[idx].spec);
                let value = match op {
                    Op::Load { addr, .. } => self.resolve_value(addr, mem),
                    Op::Rmw { addr, rmw, .. } => {
                        let old = self.resolve_value(addr, mem);
                        let new = rmw.apply(old);
                        if spec {
                            self.overlay.write(addr, new);
                        } else {
                            mem.write(addr, new);
                        }
                        old
                    }
                    _ => 0,
                };
                // An RMW pays the configured atomic penalty on top of its
                // fill, tiered by where the line came from (Schweizer-style
                // near/far costs). The functional write above still lands
                // at fill time — global serialization order is unchanged;
                // only this core's pipeline sees the extra latency.
                let extra = if matches!(op, Op::Rmw { .. }) {
                    self.rmw_penalty(c.class)
                } else {
                    0
                };
                let slot = &mut self.rob[idx];
                slot.done = Some(now.after(extra));
                slot.value = Some(value);
                slot.class = Some(c.class);
                if spec {
                    let mark = if matches!(op, Op::Rmw { .. }) {
                        SpecMark::Write
                    } else {
                        SpecMark::Read
                    };
                    let block = self.geometry.block_of(op.addr().expect("mem op"));
                    if !l1.mark_spec(now, mark, block, fabric) {
                        // Line vanished between fill and mark: conservative
                        // violation. Keep processing the remaining
                        // completions — pre-epoch ops must still finish.
                        self.acct.bump("core.mark_miss_violations");
                        if self.engine.on_violation(now) {
                            self.rollback(now, l1, fabric);
                        }
                    }
                }
            } else if let Some(seq) = self.inflight_sb.remove(&rid) {
                // Store drain completed: it must be the SB head.
                let Some(pos) = self.sb.iter().position(|e| e.seq == seq) else {
                    continue;
                };
                debug_assert_eq!(pos, 0, "stores drain in order");
                let entry = self.sb.remove(pos).expect("position found");
                if entry.spec {
                    self.overlay.write(entry.addr, entry.value);
                    let block = self.geometry.block_of(entry.addr);
                    if !l1.mark_spec(now, SpecMark::Write, block, fabric) {
                        self.acct.bump("core.mark_miss_violations");
                        if self.engine.on_violation(now) {
                            self.rollback(now, l1, fabric);
                        }
                    }
                } else {
                    mem.write(entry.addr, entry.value);
                }
            }
        }
    }

    fn process_violations(
        &mut self,
        now: Cycle,
        l1: &mut L1Controller,
        fabric: &mut Fabric<CoherenceMsg>,
    ) {
        let violations = l1.take_violations();
        if violations.is_empty() {
            return;
        }
        self.tick_progress = true;
        if self.engine.on_violation(now) {
            self.rollback(now, l1, fabric);
        }
    }

    fn try_commit<M: MemBackend>(&mut self, now: Cycle, l1: &mut L1Controller, mem: &mut M) {
        if !self.engine.speculating() {
            return;
        }
        let rob = &self.rob;
        let sb = &self.sb;
        let committed = {
            let mut check = |cond: &DrainCond| match *cond {
                DrainCond::NoStoresBefore(s) => {
                    !rob.iter().any(|sl| {
                        sl.seq < s && matches!(sl.op, Op::Store { .. }) && !sl.complete(now)
                    }) && !sb.iter().any(|e| e.seq < s)
                }
                DrainCond::NoLoadsBefore(s) => !rob.iter().any(|sl| {
                    sl.seq < s
                        && matches!(sl.op, Op::Load { .. } | Op::Rmw { .. })
                        && !sl.complete(now)
                }),
                DrainCond::OpDone(s) => match rob.iter().find(|sl| sl.seq == s) {
                    Some(sl) => sl.complete(now),
                    None => true,
                },
            };
            self.engine.try_commit(now, &mut check)
        };
        if committed {
            self.tick_progress = true;
            self.retired_ops += std::mem::take(&mut self.spec_retired_pending);
            l1.commit_spec();
            self.overlay.flush_into(mem);
            for e in &mut self.sb {
                e.spec = false;
            }
            for s in &mut self.rob {
                s.spec = false;
            }
            self.checkpoint = None;
        }
    }

    /// Retires completed ops from the ROB head; returns how many.
    fn retire<M: MemBackend>(&mut self, now: Cycle, _mem: &mut M) -> usize {
        let mut retired = 0;
        while retired < self.width {
            let Some(head) = self.rob.front() else { break };
            if matches!(head.op, Op::Store { .. }) && head.done.is_none() {
                // Store retires by moving into the store buffer.
                if self.sb.len() >= self.sb_cap {
                    self.block = TickBlock::Stall(StallKind::SbFull, head.op.tag());
                    break;
                }
                if head.spec && !self.engine.note_spec_store() {
                    // Capacity overflow: the epoch cannot grow, and waiting
                    // would deadlock (the commit may require this very
                    // store to drain). Abort the epoch like a violation.
                    self.block = TickBlock::SpecCap;
                    self.overflow_abort = true;
                    break;
                }
                let head = self.rob.pop_front().expect("peeked");
                self.attribute_wait(&head);
                let Op::Store { addr, value, tag } = head.op else {
                    unreachable!()
                };
                self.sb.push_back(SbEntry {
                    seq: head.seq,
                    addr,
                    value,
                    tag,
                    spec: head.spec,
                    req: None,
                });
                self.acct.bump("ops.store");
                if self.sb.back().is_some_and(|e| e.spec) {
                    self.spec_retired_pending += 1;
                } else {
                    self.retired_ops += 1;
                }
                retired += 1;
                continue;
            }
            if !head.complete(now) {
                break;
            }
            let head = self.rob.pop_front().expect("peeked");
            self.attribute_wait(&head);
            self.acct.bump(match head.op {
                Op::Compute(_) => "ops.compute",
                Op::Load { .. } => "ops.load",
                Op::Store { .. } => "ops.store",
                Op::Fence(_) => "ops.fence",
                Op::Rmw { .. } => "ops.rmw",
            });
            if head.op.consumes() {
                self.pending_value = head.value.or(Some(0));
                if self.awaiting == Some(head.seq) {
                    self.awaiting = None;
                }
            }
            if self.clear_backoff_on == Some(head.seq) {
                self.clear_backoff_on = None;
                self.engine.backoff_cleared();
            }
            if head.spec {
                self.spec_retired_pending += 1;
            } else {
                self.retired_ops += 1;
            }
            retired += 1;
        }
        retired
    }

    fn fetch_and_issue(
        &mut self,
        now: Cycle,
        l1: &mut L1Controller,
        fabric: &mut Fabric<CoherenceMsg>,
    ) {
        for _ in 0..self.width {
            if self.staged.is_none() {
                if self.awaiting.is_some() || self.fetch_done {
                    break;
                }
                match self.program.next_op(self.pending_value.take()) {
                    Some(op) => {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.staged = Some((seq, op));
                        self.tick_progress = true;
                    }
                    None => {
                        self.fetch_done = true;
                        self.tick_progress = true;
                        break;
                    }
                }
            }
            if !self.try_issue_staged(now, l1, fabric) {
                break;
            }
            self.tick_progress = true;
        }
    }

    /// Attempts to issue the staged op. Returns `true` if it issued.
    fn try_issue_staged(
        &mut self,
        now: Cycle,
        l1: &mut L1Controller,
        fabric: &mut Fabric<CoherenceMsg>,
    ) -> bool {
        let (seq, op) = self.staged.expect("staged op present");
        if self.rob.len() >= self.rob_cap {
            self.block = TickBlock::RobFull;
            return false;
        }
        let speculating = self.engine.speculating();

        match op {
            Op::Compute(c) => {
                self.push_slot(seq, op, Some(now.after(c)), speculating, None);
                true
            }
            Op::Store { .. } => {
                // Stores always enter the ROB; ordering is enforced at
                // retirement (in-order SB entry).
                self.push_slot(seq, op, None, speculating, None);
                true
            }
            Op::Fence(kind) => {
                if !self.model.honors_fence(kind) {
                    self.push_slot(seq, op, Some(now), speculating, None);
                    return true;
                }
                let conds = self.fence_conditions(kind, seq);
                if conds.iter().all(|c| self.cond_holds(now, c)) {
                    // An honored fence pays its configured execution
                    // latency (serialization cost over and above waiting
                    // for the drain conditions). Speculated-past fences
                    // stay free: speculation exists to elide fence cost.
                    let done = Some(now.after(self.fence_latency(kind)));
                    self.push_slot(seq, op, done, speculating, None);
                    return true;
                }
                if self.request_spec(now, seq, op, &conds) {
                    self.push_slot(seq, op, Some(now), true, None);
                    return true;
                }
                self.block = TickBlock::Stall(StallKind::Fence, op.tag());
                false
            }
            Op::Load { addr, tag, .. } => {
                let ordering_ok = match self.model {
                    ConsistencyModel::Sc => {
                        self.no_loads_before(now, seq) && self.no_stores_before(now, seq)
                    }
                    ConsistencyModel::Tso => self.older_incomplete_rmw(now, seq).is_none(),
                    ConsistencyModel::Rmo => true,
                };
                let mut spec = speculating;
                if !ordering_ok {
                    let conds = match self.model {
                        ConsistencyModel::Sc => vec![
                            DrainCond::NoLoadsBefore(seq),
                            DrainCond::NoStoresBefore(seq),
                        ],
                        ConsistencyModel::Tso => {
                            vec![DrainCond::OpDone(
                                self.older_incomplete_rmw(now, seq)
                                    .expect("rule failed on rmw"),
                            )]
                        }
                        ConsistencyModel::Rmo => unreachable!("RMO loads never stall on ordering"),
                    };
                    if !self.request_spec(now, seq, op, &conds) {
                        let kind = if self.model == ConsistencyModel::Sc {
                            StallKind::ScOrder
                        } else {
                            StallKind::Atomic
                        };
                        self.block = TickBlock::Stall(kind, tag);
                        return false;
                    }
                    spec = true;
                }
                // Same-core same-address ordering: forward from older ROB
                // stores, wait on older in-flight atomics (their value is
                // not known yet), then fall back to store-buffer forwarding.
                match self.same_addr_hazard(now, seq, addr) {
                    SameAddrHazard::Forward(v) => {
                        let done = Some(now.after(self.hit_latency));
                        let idx = self.push_slot(seq, op, done, spec, None);
                        self.rob[idx].value = Some(v);
                        self.rob[idx].class = Some(FillClass::L1Hit);
                        return true;
                    }
                    SameAddrHazard::Wait => {
                        self.block = TickBlock::SameAddrDep;
                        return false;
                    }
                    SameAddrHazard::Clear => {}
                }
                // Store-buffer forwarding (same word).
                if let Some(v) = self
                    .sb
                    .iter()
                    .rev()
                    .find(|e| e.addr == addr)
                    .map(|e| e.value)
                {
                    let done = Some(now.after(self.hit_latency));
                    let idx = self.push_slot(seq, op, done, spec, None);
                    self.rob[idx].value = Some(v);
                    self.rob[idx].class = Some(FillClass::L1Hit);
                    return true;
                }
                let req = self.fresh_req();
                match l1.request(
                    now,
                    req,
                    AccessKind::Read,
                    self.geometry.block_of(addr),
                    fabric,
                ) {
                    Ok(()) => {
                        self.inflight_rob.insert(req.0, seq);
                        self.push_slot(seq, op, None, spec, None);
                        true
                    }
                    Err(RequestError::MshrFull) => {
                        self.block = TickBlock::MshrFull;
                        false
                    }
                }
            }
            Op::Rmw { addr, tag, .. } => {
                let ordering_ok = match self.model {
                    ConsistencyModel::Sc | ConsistencyModel::Tso => {
                        self.no_loads_before(now, seq) && self.no_stores_before(now, seq)
                    }
                    ConsistencyModel::Rmo => true,
                };
                let mut spec = speculating;
                if !ordering_ok {
                    let conds = vec![
                        DrainCond::NoLoadsBefore(seq),
                        DrainCond::NoStoresBefore(seq),
                    ];
                    if !self.request_spec(now, seq, op, &conds) {
                        let kind = if self.model == ConsistencyModel::Sc {
                            StallKind::ScOrder
                        } else {
                            StallKind::Atomic
                        };
                        self.block = TickBlock::Stall(kind, tag);
                        return false;
                    }
                    spec = true;
                }
                if self.rmw_same_addr_blocked(now, seq, addr) {
                    self.block = TickBlock::SameAddrDep;
                    return false;
                }
                let req = self.fresh_req();
                match l1.request(
                    now,
                    req,
                    AccessKind::Write,
                    self.geometry.block_of(addr),
                    fabric,
                ) {
                    Ok(()) => {
                        self.inflight_rob.insert(req.0, seq);
                        self.push_slot(seq, op, None, spec, None);
                        true
                    }
                    Err(RequestError::MshrFull) => {
                        self.block = TickBlock::MshrFull;
                        false
                    }
                }
            }
        }
    }

    fn fence_conditions(&self, kind: FenceKind, seq: u64) -> Vec<DrainCond> {
        match kind {
            FenceKind::Full => {
                vec![
                    DrainCond::NoLoadsBefore(seq),
                    DrainCond::NoStoresBefore(seq),
                ]
            }
            // Acquire and (simplified) Release both wait on older loads;
            // stores are already ordered by the in-order store buffer.
            FenceKind::Acquire | FenceKind::Release => vec![DrainCond::NoLoadsBefore(seq)],
        }
    }

    /// Extra completion cycles for an RMW whose fill was serviced by
    /// `class` — the [`AtomicsConfig`] near/far cost tiers.
    fn rmw_penalty(&self, class: FillClass) -> u64 {
        match class {
            FillClass::L1Hit => self.atomics.rmw_l1,
            FillClass::L2Hit | FillClass::Coherence => self.atomics.rmw_same_socket,
            FillClass::DramCold | FillClass::DramCapacity => self.atomics.rmw_cross_socket,
        }
    }

    /// Execution latency of an honored fence of `kind`.
    fn fence_latency(&self, kind: FenceKind) -> u64 {
        match kind {
            FenceKind::Full => self.atomics.fence_full,
            FenceKind::Acquire | FenceKind::Release => self.atomics.fence_oneway,
        }
    }

    /// Asks the engine to bypass an ordering stall; opens the checkpoint if
    /// this starts a new epoch.
    fn request_spec(&mut self, now: Cycle, seq: u64, op: Op, conds: &[DrainCond]) -> bool {
        let was_speculating = self.engine.speculating();
        let Some((&first, rest)) = conds.split_first() else {
            return false;
        };
        if !self.engine.request_speculation(now, seq, first) {
            self.tick_refusals += 1;
            return false;
        }
        if was_speculating {
            self.tick_ext_grants += 1;
        } else {
            // A new epoch opened: engine state changed, so this cycle can
            // never be skipped.
            self.tick_progress = true;
        }
        for &c in rest {
            if !self.engine.request_speculation(now, seq, c) {
                // Cap refusal mid-way: stay conservative and stall. The
                // already-added condition is harmless (it only delays
                // commit).
                self.tick_refusals += 1;
                return false;
            }
            if was_speculating {
                self.tick_ext_grants += 1;
            }
        }
        if !was_speculating {
            self.checkpoint = Some(Checkpoint {
                program: self.program.snapshot(),
                replay_op: op,
                start_seq: seq,
            });
        }
        true
    }

    fn push_slot(
        &mut self,
        seq: u64,
        op: Op,
        done: Option<Cycle>,
        spec: bool,
        value: Option<u64>,
    ) -> usize {
        self.rob.push_back(Slot {
            seq,
            op,
            done,
            spec,
            value,
            waited: 0,
            class: None,
        });
        self.staged = None;
        if op.consumes() {
            self.awaiting = Some(seq);
        }
        if self.engine.speculating() {
            self.engine.note_spec_op();
        }
        self.rob.len() - 1
    }

    fn drain_sb(&mut self, now: Cycle, l1: &mut L1Controller, fabric: &mut Fabric<CoherenceMsg>) {
        let Some(head) = self.sb.front_mut() else {
            return;
        };
        if head.req.is_some() {
            return; // drain in flight
        }
        let req = ReqId(self.next_req);
        let block = self.geometry.block_of(head.addr);
        match l1.request(now, req, AccessKind::Write, block, fabric) {
            Ok(()) => {
                self.next_req += 1;
                head.req = Some(req);
                let seq = head.seq;
                self.inflight_sb.insert(req.0, seq);
                self.tick_progress = true;
            }
            Err(RequestError::MshrFull) => {
                // Retry next cycle.
                self.tick_sb_drain_stall = true;
                self.acct.bump("core.sb_drain_mshr_stalls");
            }
        }
    }

    fn rollback(&mut self, now: Cycle, l1: &mut L1Controller, fabric: &mut Fabric<CoherenceMsg>) {
        self.tick_progress = true;
        let cp = self
            .checkpoint
            .take()
            .expect("engine reported an active epoch without a checkpoint");
        let start = cp.start_seq;

        // Discard speculative ROB slots, dooming their in-flight requests.
        let doomed_rob: Vec<u64> = self
            .inflight_rob
            .iter()
            .filter(|(_, &seq)| seq >= start)
            .map(|(&rid, _)| rid)
            .collect();
        for rid in doomed_rob {
            self.inflight_rob.remove(&rid);
            self.doomed.insert(rid);
        }
        self.rob.retain(|s| s.seq < start);

        // Discard speculative store-buffer entries.
        let doomed_sb: Vec<u64> = self
            .inflight_sb
            .iter()
            .filter(|(_, &seq)| seq >= start)
            .map(|(&rid, _)| rid)
            .collect();
        for rid in doomed_sb {
            self.inflight_sb.remove(&rid);
            self.doomed.insert(rid);
        }
        self.sb.retain(|e| e.seq < start);

        self.spec_retired_pending = 0;
        l1.rollback_spec(now, fabric);
        self.overlay.clear();

        // Restore the program and stage the speculation point for
        // non-speculative re-execution (backoff).
        self.program = cp.program;
        self.fetch_done = false;
        self.awaiting = None;
        self.pending_value = None;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.staged = Some((seq, cp.replay_op));
        self.clear_backoff_on = Some(seq);
        self.acct.bump("core.rollbacks");
        self.tracer.instant(
            now,
            u32::from(self.id.0),
            TraceCategory::Spec,
            "spec.rollback",
            start,
        );
    }

    fn finish_check<M: MemBackend>(&mut self, now: Cycle, l1: &mut L1Controller, mem: &mut M) {
        if self.done_at.is_some() {
            return;
        }
        let drained = self.fetch_done
            && self.staged.is_none()
            && self.rob.is_empty()
            && self.sb.is_empty()
            && self.inflight_rob.is_empty()
            && self.inflight_sb.is_empty();
        if !drained {
            return;
        }
        if self.engine.speculating() {
            // Final commit: everything has drained, so the epoch's
            // conditions hold vacuously (continuous mode may still be
            // holding out for its interval).
            l1.commit_spec();
            self.overlay.flush_into(mem);
            self.checkpoint = None;
            self.engine.drain_at_end();
        }
        self.retired_ops += std::mem::take(&mut self.spec_retired_pending);
        self.done_at = Some(now);
        self.tick_progress = true;
    }

    /// Charges a popped slot's accumulated head-blocked cycles to its
    /// memory bucket.
    fn attribute_wait(&mut self, slot: &Slot) {
        if slot.waited == 0 {
            return;
        }
        let bucket = slot
            .class
            .map(|c| account::mem_bucket(slot.op.tag(), c))
            .unwrap_or(account::MEM_UNRESOLVED);
        self.acct.bump_by(bucket, slot.waited);
    }

    /// Flushes attribution for slots still in flight when a run is cut off
    /// at its cycle limit. Call once at end of simulation.
    pub fn flush_accounting(&mut self) {
        let pending: u64 = self.rob.iter().map(|s| s.waited).sum();
        if pending > 0 {
            self.acct.bump_by(account::MEM_UNRESOLVED, pending);
            for s in &mut self.rob {
                s.waited = 0;
            }
        }
    }

    /// Extends or closes the current consistency-stall trace span. A stall
    /// span covers consecutive cycles blocked on the same [`StallKind`];
    /// it is emitted when the run ends (or the kind changes).
    fn trace_stall(&mut self, now: Cycle, current: Option<StallKind>) {
        if !self.tracer.is_enabled() {
            return;
        }
        match (self.stall_run, current) {
            (Some((kind, run)), Some(cur)) if kind == cur => {
                self.stall_run = Some((kind, run + 1));
            }
            (open, cur) => {
                if let Some((kind, run)) = open {
                    let name = match kind {
                        StallKind::Fence => "stall.fence",
                        StallKind::ScOrder => "stall.sc_order",
                        StallKind::Atomic => "stall.atomic",
                        StallKind::SbFull => "stall.sb_full",
                    };
                    self.tracer.span(
                        now,
                        run,
                        u32::from(self.id.0),
                        TraceCategory::Fence,
                        name,
                        0,
                    );
                }
                self.stall_run = cur.map(|kind| (kind, 1));
            }
        }
    }

    fn account(&mut self, now: Cycle, retired: usize) {
        self.account_n(now, retired, 1);
    }

    /// Cycle accounting, charged `n` times. `n == 1` is the normal per-tick
    /// path; fast-forward replays a quiescent cycle's attribution over the
    /// whole skipped gap with `n == gap` (the block/ROB/SB state it reads
    /// is provably constant across the gap).
    fn account_n(&mut self, now: Cycle, retired: usize, n: u64) {
        let stall = match self.block {
            TickBlock::Stall(kind, _) if retired == 0 => Some(kind),
            _ => None,
        };
        self.trace_stall(now, stall);
        if retired > 0 {
            self.acct.bump_by(account::BUSY, n);
            return;
        }
        let fallback = match self.block {
            TickBlock::Stall(kind, tag) => {
                self.acct.bump_by(account::stall_bucket(kind, tag), n);
                return;
            }
            TickBlock::SpecCap => {
                self.acct.bump_by(account::SPEC_CAP, n);
                return;
            }
            TickBlock::SameAddrDep => {
                self.acct.bump_by(account::SAME_ADDR_DEP, n);
                return;
            }
            // Capacity hazards (full ROB / MSHRs) are symptoms of waiting
            // on in-flight memory: attribute to the blocking ROB head when
            // one exists, so memory-bound phases read as memory-bound.
            TickBlock::RobFull => Some(account::ROB_FULL),
            TickBlock::MshrFull => Some(account::MSHR_FULL),
            TickBlock::None => None,
        };
        // Nothing issued or retired: the ROB head (or the SB drain) is the
        // bottleneck.
        if let Some(head) = self.rob.front_mut() {
            match head.op {
                Op::Compute(_) => self.acct.bump_by(account::COMPUTE, n),
                Op::Load { .. } | Op::Rmw { .. } | Op::Store { .. } => {
                    head.waited += n;
                }
                // A fence still counting down its execution latency is a
                // fence stall; a fence blocked for any other reason (e.g.
                // ROB-head bookkeeping on the retire edge) keeps the
                // legacy attribution so zero-latency runs are unchanged.
                Op::Fence(_) if !head.complete(now) => self.acct.bump_by(account::FENCE_EXEC, n),
                Op::Fence(_) => self.acct.bump_by(account::OTHER, n),
            }
            return;
        }
        if let Some(bucket) = fallback {
            self.acct.bump_by(bucket, n);
            return;
        }
        if !self.sb.is_empty() {
            // Only the store buffer is busy (post-program drain).
            let tag = self.sb.front().map(|e| e.tag).unwrap_or(MemTag::Data);
            self.acct
                .bump_by(account::stall_bucket(StallKind::SbFull, tag), n);
            return;
        }
        if self.done_at.is_some() || self.fetch_done {
            self.acct.bump_by(account::IDLE_DONE, n);
        } else {
            self.acct.bump_by(account::OTHER, n);
        }
    }

    /// Resolves the architectural value of `addr` as seen by this core:
    /// store buffer first, then the speculative overlay, then memory.
    fn resolve_value<M: MemBackend>(&self, addr: Addr, mem: &M) -> u64 {
        if let Some(e) = self.sb.iter().rev().find(|e| e.addr == addr) {
            return e.value;
        }
        if let Some(v) = self.overlay.read(addr) {
            return v;
        }
        mem.read(addr)
    }
}
