//! Memory consistency models: [`ConsistencyModel`].
//!
//! The enforcement rules themselves live in the core's issue logic; this
//! module defines the model vocabulary and the per-model semantic
//! predicates the core consults.

use crate::op::FenceKind;

/// The consistency model a core enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyModel {
    /// Sequential consistency: every memory operation waits for all older
    /// memory operations to be globally performed.
    Sc,
    /// Total store order (x86-like): loads issue freely past buffered
    /// stores, stores drain in order, atomics serialize (drain the store
    /// buffer and block younger memory operations), and only explicit full
    /// fences have an effect.
    Tso,
    /// Relaxed memory order (weakly ordered): loads and stores are freely
    /// reordered; ordering comes only from explicit acquire / release /
    /// full fences. Atomics carry no implicit ordering.
    Rmo,
}

impl ConsistencyModel {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ConsistencyModel::Sc => "SC",
            ConsistencyModel::Tso => "TSO",
            ConsistencyModel::Rmo => "RMO",
        }
    }

    /// All models, strongest first.
    pub fn all() -> [ConsistencyModel; 3] {
        [
            ConsistencyModel::Sc,
            ConsistencyModel::Tso,
            ConsistencyModel::Rmo,
        ]
    }

    /// Whether an explicit fence of `kind` imposes any ordering the model
    /// does not already guarantee (a "no-op fence" completes immediately).
    pub fn honors_fence(self, kind: FenceKind) -> bool {
        match self {
            // SC orders everything already.
            ConsistencyModel::Sc => false,
            // TSO already provides acquire/release; only StoreLoad (full)
            // fences do anything.
            ConsistencyModel::Tso => kind == FenceKind::Full,
            ConsistencyModel::Rmo => true,
        }
    }

    /// Whether every memory operation must wait for all older memory
    /// operations (the SC rule).
    pub fn serializes_memory(self) -> bool {
        self == ConsistencyModel::Sc
    }

    /// Whether atomics act as full fences (drain the store buffer, block
    /// younger memory operations until they complete).
    pub fn atomics_fence(self) -> bool {
        self == ConsistencyModel::Tso
    }
}

impl std::fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl ConsistencyModel {
    /// Inverse of [`Self::label`], case-insensitive.
    pub fn from_label(label: &str) -> Option<ConsistencyModel> {
        match label.to_ascii_lowercase().as_str() {
            "sc" => Some(ConsistencyModel::Sc),
            "tso" => Some(ConsistencyModel::Tso),
            "rmo" => Some(ConsistencyModel::Rmo),
            _ => None,
        }
    }
}

impl tenways_sim::json::ToJson for ConsistencyModel {
    fn to_json(&self) -> tenways_sim::json::Json {
        tenways_sim::json::Json::Str(self.label().to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ConsistencyModel::Sc.label(), "SC");
        assert_eq!(ConsistencyModel::Tso.to_string(), "TSO");
        assert_eq!(ConsistencyModel::Rmo.label(), "RMO");
    }

    #[test]
    fn fence_semantics_by_model() {
        use FenceKind::*;
        assert!(!ConsistencyModel::Sc.honors_fence(Full));
        assert!(ConsistencyModel::Tso.honors_fence(Full));
        assert!(!ConsistencyModel::Tso.honors_fence(Acquire));
        assert!(!ConsistencyModel::Tso.honors_fence(Release));
        assert!(ConsistencyModel::Rmo.honors_fence(Acquire));
        assert!(ConsistencyModel::Rmo.honors_fence(Release));
        assert!(ConsistencyModel::Rmo.honors_fence(Full));
    }

    #[test]
    fn strength_predicates() {
        assert!(ConsistencyModel::Sc.serializes_memory());
        assert!(!ConsistencyModel::Tso.serializes_memory());
        assert!(ConsistencyModel::Tso.atomics_fence());
        assert!(!ConsistencyModel::Rmo.atomics_fence());
    }
}
