//! Whole-machine assembly: [`Machine`] wires cores, L1s, directory banks,
//! the fabric and the functional memory into one steppable simulator.

use tenways_coherence::{DirectoryBank, L1Controller, ProtocolConfig};
use tenways_core::SpecConfig;
use tenways_noc::Fabric;
use tenways_sim::trace::Tracer;
use tenways_sim::{Clock, CoreId, Cycle, Histogram, MachineConfig, StatSet};

use crate::archmem::ArchMem;
use crate::consistency::ConsistencyModel;
use crate::core::Core;
use crate::op::ThreadProgram;

type CoherenceMsg = tenways_coherence::Msg;

/// Everything that defines a run besides the workload itself.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Hardware description.
    pub machine: MachineConfig,
    /// Consistency model all cores enforce.
    pub model: ConsistencyModel,
    /// Fence-speculation configuration.
    pub spec: SpecConfig,
    /// Coherence protocol options.
    pub protocol: ProtocolConfig,
}

impl MachineSpec {
    /// A spec with default hardware, the given model, and no speculation.
    pub fn baseline(model: ConsistencyModel) -> Self {
        MachineSpec {
            machine: MachineConfig::default(),
            model,
            spec: SpecConfig::disabled(),
            protocol: ProtocolConfig::default(),
        }
    }

    /// Replaces the hardware description.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Replaces the speculation configuration.
    pub fn with_spec(mut self, spec: SpecConfig) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the protocol options.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }
}

/// Result of a [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles simulated.
    pub cycles: u64,
    /// Whether every thread finished before the limit.
    pub finished: bool,
    /// Per-core completion cycle (None if cut off).
    pub core_done_at: Vec<Option<u64>>,
    /// Total dynamic operations retired across cores.
    pub retired_ops: u64,
}

impl tenways_sim::json::ToJson for RunSummary {
    fn to_json(&self) -> tenways_sim::json::Json {
        use tenways_sim::json::Json;
        Json::obj([
            ("cycles", Json::U64(self.cycles)),
            ("finished", Json::Bool(self.finished)),
            (
                "core_done_at",
                Json::Arr(
                    self.core_done_at
                        .iter()
                        .map(|d| d.map_or(Json::Null, Json::U64))
                        .collect(),
                ),
            ),
            ("retired_ops", Json::U64(self.retired_ops)),
            ("throughput", Json::F64(self.throughput())),
        ])
    }
}

impl RunSummary {
    /// Retired operations per cycle across the whole machine.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_ops as f64 / self.cycles as f64
        }
    }
}

/// The assembled multicore simulator.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    clock: Clock,
    fabric: Fabric<CoherenceMsg>,
    dirs: Vec<DirectoryBank>,
    l1s: Vec<L1Controller>,
    cores: Vec<Core>,
    mem: ArchMem,
    /// Jump over quiescent gaps in [`Machine::run`] (bit-for-bit identical
    /// results; disable to force naive per-cycle stepping).
    fast_forward: bool,
}

impl Machine {
    /// Builds a machine running one program per core.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the configured core count.
    pub fn new(spec: &MachineSpec, programs: Vec<Box<dyn ThreadProgram>>) -> Self {
        assert_eq!(
            programs.len(),
            spec.machine.cores,
            "need exactly one program per core"
        );
        let cfg = spec.machine.clone();
        let l1s = cfg
            .core_ids()
            .map(|c| L1Controller::new(c, &cfg, spec.protocol))
            .collect();
        let dirs = (0..cfg.dir_banks)
            .map(|b| DirectoryBank::with_protocol(b, &cfg, spec.protocol))
            .collect();
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(CoreId(i as u16), &cfg, spec.model, spec.spec, p))
            .collect();
        Machine {
            fabric: Fabric::for_machine(&cfg),
            cfg,
            clock: Clock::new(),
            dirs,
            l1s,
            cores,
            mem: ArchMem::new(),
            fast_forward: true,
        }
    }

    /// Enables or disables event-horizon fast-forward in [`Machine::run`].
    /// On by default; both settings produce identical results — naive
    /// stepping exists for regression comparison and benchmarking.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// The machine description.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Attaches an event tracer to every instrumented component (cores,
    /// directory banks, fabric). Clones of the handle share one buffer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        if tracer.is_enabled() {
            // Tracing wants a span for every cycle, including quiescent
            // ones; fall back to naive stepping so none are skipped.
            self.fast_forward = false;
        }
        for core in &mut self.cores {
            core.set_tracer(tracer.clone());
        }
        for dir in &mut self.dirs {
            dir.set_tracer(tracer.clone());
        }
        self.fabric.set_tracer(tracer);
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// The functional memory (inspect end-of-run values).
    pub fn mem(&self) -> &ArchMem {
        &self.mem
    }

    /// Seeds a functional memory value before the run (workload init).
    pub fn poke(&mut self, addr: tenways_sim::Addr, value: u64) {
        self.mem.write(addr, value);
    }

    /// One core (stats access).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// One L1 controller (stats access).
    pub fn l1(&self, id: CoreId) -> &L1Controller {
        &self.l1s[id.index()]
    }

    /// Whether every thread has finished and drained.
    pub fn all_done(&self) -> bool {
        self.cores.iter().all(Core::is_done)
    }

    /// Advances the whole machine one cycle.
    pub fn step(&mut self) {
        self.step_tracked();
    }

    /// Advances one cycle and reports whether any component made progress
    /// (changed non-stat state). A `false` return means this cycle was pure
    /// waiting: every component's side effects were stat-only and will
    /// repeat identically each cycle until the next scheduled event.
    fn step_tracked(&mut self) -> bool {
        let now = self.clock.advance();
        let mut progress = self.fabric.tick(now);
        for dir in &mut self.dirs {
            progress |= dir.tick(now, &mut self.fabric);
        }
        for i in 0..self.cores.len() {
            progress |= self.l1s[i].tick(now, &mut self.fabric);
            progress |= self.cores[i].tick(now, &mut self.l1s[i], &mut self.fabric, &mut self.mem);
            // Core-driven requests land in the L1 after its own tick; a
            // failed request can still consume one-shot state (e.g. clear
            // a prefetched bit), which makes this cycle non-repeatable.
            progress |= self.l1s[i].took_one_time_fx();
        }
        progress
    }

    /// Earliest future cycle at which any component has scheduled work: the
    /// machine-wide event horizon. `None` means no component will act on
    /// its own (all threads done, or a hard deadlock).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let mut fold = |e: Option<Cycle>| {
            if let Some(at) = e {
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
        };
        fold(self.fabric.next_event(now));
        for dir in &self.dirs {
            fold(dir.next_event(now));
        }
        for l1 in &self.l1s {
            fold(l1.next_event(now));
        }
        for core in &self.cores {
            fold(core.next_event(now));
        }
        horizon
    }

    /// Runs until every thread finishes or `limit` cycles elapse, jumping
    /// the clock across quiescent gaps when fast-forward is enabled
    /// (default). Results are bit-for-bit identical to [`Machine::run_naive`].
    pub fn run(&mut self, limit: u64) -> RunSummary {
        if !self.fast_forward {
            return self.run_naive(limit);
        }
        let start = self.clock.now();
        let end = start.after(limit);
        while !self.all_done() && self.clock.now() < end {
            let progress = self.step_tracked();
            let now = self.clock.now();
            if progress || now >= end || self.all_done() {
                continue;
            }
            // Quiescent cycle: naive stepping would repeat it verbatim up
            // to the cycle before the next event (or the run limit).
            // Replay its stat-only side effects across the gap and jump.
            let target = match self.next_event(now) {
                Some(h) => {
                    debug_assert!(h > now, "horizon must be in the future");
                    Cycle::new(h.as_u64() - 1).min(end)
                }
                // Nothing scheduled but threads unfinished: deadlocked
                // until the limit cuts the run off.
                None => end,
            };
            let gap = target - now;
            if gap == 0 {
                continue;
            }
            self.fabric.skip_idle(target, gap);
            for l1 in &mut self.l1s {
                l1.skip_idle(gap);
            }
            for core in &mut self.cores {
                core.skip_idle(now, gap);
            }
            self.clock.advance_by(gap);
        }
        self.finish(start)
    }

    /// Runs with plain one-cycle-at-a-time stepping, never fast-forwarding.
    /// Reference loop for regression tests and benchmark baselines.
    pub fn run_naive(&mut self, limit: u64) -> RunSummary {
        let start = self.clock.now();
        while !self.all_done() && self.clock.now() - start < limit {
            self.step();
        }
        self.finish(start)
    }

    fn finish(&mut self, start: Cycle) -> RunSummary {
        for c in &mut self.cores {
            c.flush_accounting();
        }
        RunSummary {
            cycles: self.clock.now() - start,
            finished: self.all_done(),
            core_done_at: self
                .cores
                .iter()
                .map(|c| c.done_at().map(Cycle::as_u64))
                .collect(),
            retired_ops: self.cores.iter().map(Core::retired_ops).sum(),
        }
    }

    /// Merges every component's statistics into one set. Prefixes keep the
    /// sources apart (`cyc.*` core accounting, `l1.*`, `dir.*`, `dram.*`,
    /// `noc.*`, `spec.*`).
    pub fn merged_stats(&self) -> StatSet {
        let mut out = StatSet::new();
        for c in &self.cores {
            out.merge(c.accounting());
            out.merge(c.engine().stats());
        }
        for l1 in &self.l1s {
            out.merge(l1.stats());
        }
        for d in &self.dirs {
            out.merge(d.stats());
            out.merge(d.dram_stats());
        }
        out.merge(self.fabric.stats());
        out
    }

    /// Merged store-buffer occupancy histogram across cores.
    pub fn sb_occupancy(&self) -> Histogram {
        let mut h = Histogram::new(65, 1);
        for c in &self.cores {
            h.merge(c.sb_occupancy());
        }
        h
    }

    /// Merged speculation-depth histogram across cores.
    pub fn spec_depth(&self) -> Histogram {
        let mut h = Histogram::new(256, 1);
        for c in &self.cores {
            h.merge(c.engine().depth_histogram());
        }
        h
    }
}
