//! Whole-machine assembly: [`Machine`] wires cores, L1s, directory banks,
//! the fabric and the functional memory into one steppable simulator.

use tenways_coherence::{DirectoryBank, L1Controller, ProtocolConfig};
use tenways_core::SpecConfig;
use tenways_noc::Fabric;
use tenways_sim::trace::Tracer;
use tenways_sim::{AtomicsConfig, Clock, CoreId, Cycle, Histogram, MachineConfig, StatSet};

use crate::archmem::ArchMem;
use crate::consistency::ConsistencyModel;
use crate::core::Core;
use crate::op::ThreadProgram;
use crate::wake::{WakeWheel, NEVER};

type CoherenceMsg = tenways_coherence::Msg;

/// How [`Machine::run`] advances time. Every mode produces bit-for-bit
/// identical results; they differ only in host wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Tick every component every cycle. The reference loop.
    Naive,
    /// Tick every component every cycle, but jump the clock across
    /// machine-wide quiescent gaps (the PR 3 event-horizon fast-forward).
    MachineGap,
    /// Component-granular wake scheduling: each cycle, tick only the
    /// components whose wake time is due; idle components sleep and have
    /// their stat-only cycle effects replayed lazily on wake. The default.
    #[default]
    ComponentWake,
    /// Conservative epoch-parallel scheduling: the scheduling units
    /// (fabric, directory banks, fused core+L1 complexes) are sharded
    /// across `workers` threads; each shard free-runs its own wake wheel
    /// through windows of the minimum NoC latency and exchanges fabric
    /// messages only at window boundaries (see `crate::epoch`). Falls
    /// back to [`ComponentWake`] when the machine is too small to shard
    /// or the minimum latency is zero.
    ParallelEpoch {
        /// Worker threads to shard across (clamped to the core count;
        /// `0` behaves as `1`).
        workers: usize,
    },
}

impl SchedMode {
    /// Stable label for configs, CLI flags and run records.
    pub fn label(&self) -> &'static str {
        match self {
            SchedMode::Naive => "naive",
            SchedMode::MachineGap => "machine-gap",
            SchedMode::ComponentWake => "component-wake",
            SchedMode::ParallelEpoch { .. } => "parallel-epoch",
        }
    }
}

/// Everything that defines a run besides the workload itself.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Hardware description.
    pub machine: MachineConfig,
    /// Consistency model all cores enforce.
    pub model: ConsistencyModel,
    /// Fence-speculation configuration.
    pub spec: SpecConfig,
    /// Coherence protocol options.
    pub protocol: ProtocolConfig,
    /// Atomic RMW / fence cost model (default: all-zero, i.e. off).
    pub atomics: AtomicsConfig,
}

impl MachineSpec {
    /// A spec with default hardware, the given model, and no speculation.
    pub fn baseline(model: ConsistencyModel) -> Self {
        MachineSpec {
            machine: MachineConfig::default(),
            model,
            spec: SpecConfig::disabled(),
            protocol: ProtocolConfig::default(),
            atomics: AtomicsConfig::default(),
        }
    }

    /// Replaces the hardware description.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Replaces the speculation configuration.
    pub fn with_spec(mut self, spec: SpecConfig) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the protocol options.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replaces the atomics cost model.
    pub fn with_atomics(mut self, atomics: AtomicsConfig) -> Self {
        self.atomics = atomics;
        self
    }
}

/// Result of a [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles simulated.
    pub cycles: u64,
    /// Whether every thread finished before the limit.
    pub finished: bool,
    /// Per-core completion cycle (None if cut off).
    pub core_done_at: Vec<Option<u64>>,
    /// Total dynamic operations retired across cores.
    pub retired_ops: u64,
}

impl tenways_sim::json::ToJson for RunSummary {
    fn to_json(&self) -> tenways_sim::json::Json {
        use tenways_sim::json::Json;
        Json::obj([
            ("cycles", Json::U64(self.cycles)),
            ("finished", Json::Bool(self.finished)),
            (
                "core_done_at",
                Json::Arr(
                    self.core_done_at
                        .iter()
                        .map(|d| d.map_or(Json::Null, Json::U64))
                        .collect(),
                ),
            ),
            ("retired_ops", Json::U64(self.retired_ops)),
            ("throughput", Json::F64(self.throughput())),
        ])
    }
}

impl RunSummary {
    /// Retired operations per cycle across the whole machine.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_ops as f64 / self.cycles as f64
        }
    }
}

/// The assembled multicore simulator.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) clock: Clock,
    pub(crate) fabric: Fabric<CoherenceMsg>,
    pub(crate) dirs: Vec<DirectoryBank>,
    pub(crate) l1s: Vec<L1Controller>,
    pub(crate) cores: Vec<Core>,
    pub(crate) mem: ArchMem,
    /// Run-loop scheduling strategy (bit-for-bit identical results across
    /// all modes; non-default modes exist for regression comparison,
    /// benchmarking, and multi-worker wall-clock scaling).
    sched: SchedMode,
}

impl Machine {
    /// Builds a machine running one program per core.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the configured core count.
    pub fn new(spec: &MachineSpec, programs: Vec<Box<dyn ThreadProgram>>) -> Self {
        assert_eq!(
            programs.len(),
            spec.machine.cores,
            "need exactly one program per core"
        );
        let cfg = spec.machine.clone();
        let l1s = cfg
            .core_ids()
            .map(|c| L1Controller::new(c, &cfg, spec.protocol))
            .collect();
        let dirs = (0..cfg.dir_banks)
            .map(|b| DirectoryBank::with_protocol(b, &cfg, spec.protocol))
            .collect();
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                Core::new(
                    CoreId(i as u16),
                    &cfg,
                    spec.model,
                    spec.spec,
                    spec.atomics,
                    p,
                )
            })
            .collect();
        Machine {
            fabric: Fabric::for_machine(&cfg),
            cfg,
            clock: Clock::new(),
            dirs,
            l1s,
            cores,
            mem: ArchMem::new(),
            sched: SchedMode::default(),
        }
    }

    /// Selects the run-loop scheduling strategy (default:
    /// [`SchedMode::ComponentWake`]). All modes produce identical results.
    pub fn set_sched(&mut self, sched: SchedMode) {
        self.sched = sched;
    }

    /// The machine description.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Attaches an event tracer to every instrumented component (cores,
    /// directory banks, fabric). Clones of the handle share one buffer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        if tracer.is_enabled() {
            // Tracing wants a span for every cycle, including quiescent
            // ones; fall back to naive stepping so none are skipped.
            self.sched = SchedMode::Naive;
        }
        for core in &mut self.cores {
            core.set_tracer(tracer.clone());
        }
        for dir in &mut self.dirs {
            dir.set_tracer(tracer.clone());
        }
        self.fabric.set_tracer(tracer);
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// The functional memory (inspect end-of-run values).
    pub fn mem(&self) -> &ArchMem {
        &self.mem
    }

    /// Seeds a functional memory value before the run (workload init).
    pub fn poke(&mut self, addr: tenways_sim::Addr, value: u64) {
        self.mem.write(addr, value);
    }

    /// One core (stats access).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// One L1 controller (stats access).
    pub fn l1(&self, id: CoreId) -> &L1Controller {
        &self.l1s[id.index()]
    }

    /// Whether every thread has finished and drained.
    pub fn all_done(&self) -> bool {
        self.cores.iter().all(Core::is_done)
    }

    /// Advances the whole machine one cycle.
    pub fn step(&mut self) {
        self.step_tracked();
    }

    /// Advances one cycle and reports whether any component made progress
    /// (changed non-stat state). A `false` return means this cycle was pure
    /// waiting: every component's side effects were stat-only and will
    /// repeat identically each cycle until the next scheduled event.
    fn step_tracked(&mut self) -> bool {
        let now = self.clock.advance();
        let mut progress = self.fabric.tick(now);
        for dir in &mut self.dirs {
            progress |= dir.tick(now, &mut self.fabric);
        }
        for i in 0..self.cores.len() {
            progress |= self.l1s[i].tick(now, &mut self.fabric);
            progress |= self.cores[i].tick(now, &mut self.l1s[i], &mut self.fabric, &mut self.mem);
            // Core-driven requests land in the L1 after its own tick; a
            // failed request can still consume one-shot state (e.g. clear
            // a prefetched bit), which makes this cycle non-repeatable.
            progress |= self.l1s[i].took_one_time_fx();
        }
        progress
    }

    /// Earliest future cycle at which any component has scheduled work: the
    /// machine-wide event horizon. `None` means no component will act on
    /// its own (all threads done, or a hard deadlock).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let mut fold = |e: Option<Cycle>| {
            if let Some(at) = e {
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
        };
        fold(self.fabric.next_event(now));
        for dir in &self.dirs {
            fold(dir.next_event(now));
        }
        for l1 in &self.l1s {
            fold(l1.next_event(now));
        }
        for core in &self.cores {
            fold(core.next_event(now));
        }
        horizon
    }

    /// Runs until every thread finishes or `limit` cycles elapse, using
    /// the configured [`SchedMode`] (component-granular wake scheduling by
    /// default). Results are bit-for-bit identical to [`Machine::run_naive`].
    pub fn run(&mut self, limit: u64) -> RunSummary {
        match self.sched {
            SchedMode::Naive => self.run_naive(limit),
            SchedMode::MachineGap => self.run_machine_gap(limit),
            SchedMode::ComponentWake => self.run_wake(limit),
            SchedMode::ParallelEpoch { workers } => crate::epoch::run(self, limit, workers),
        }
    }

    /// The PR 3 loop: every component ticks every cycle, but machine-wide
    /// quiescent gaps are replayed in bulk and jumped over.
    fn run_machine_gap(&mut self, limit: u64) -> RunSummary {
        let start = self.clock.now();
        let end = start.after(limit);
        while !self.all_done() && self.clock.now() < end {
            let progress = self.step_tracked();
            let now = self.clock.now();
            if progress || now >= end || self.all_done() {
                continue;
            }
            // Quiescent cycle: naive stepping would repeat it verbatim up
            // to the cycle before the next event (or the run limit).
            // Replay its stat-only side effects across the gap and jump.
            let target = match self.next_event(now) {
                Some(h) => {
                    debug_assert!(h > now, "horizon must be in the future");
                    Cycle::new(h.as_u64() - 1).min(end)
                }
                // Nothing scheduled but threads unfinished: deadlocked
                // until the limit cuts the run off.
                None => end,
            };
            let gap = target - now;
            if gap == 0 {
                continue;
            }
            self.fabric.skip_idle(now, gap);
            for l1 in &mut self.l1s {
                l1.skip_idle(now, gap);
            }
            for core in &mut self.cores {
                core.skip_idle(now, gap);
            }
            self.clock.advance_by(gap);
        }
        self.finish(start)
    }

    /// Component index of the fabric in the wake wheel.
    const FABRIC_COMP: u32 = 0;

    /// Maps a fabric endpoint to its wake-wheel component: directory banks
    /// follow the fabric, core complexes (L1 + core, fused because they
    /// exchange state within a cycle) follow the banks.
    fn comp_of_node(&self, node: tenways_sim::NodeId) -> u32 {
        let cores = self.cores.len();
        if node.index() < cores {
            (1 + self.dirs.len() + node.index()) as u32
        } else {
            (1 + (node.index() - cores)) as u32
        }
    }

    /// The component-granular wake scheduler: each cycle with any due
    /// work, tick exactly the due components (in the canonical fabric →
    /// directory banks → core complexes order) and put each back to sleep
    /// until its own next event. Components woken after a gap first replay
    /// the stat-only effects of the no-progress ticks they slept through
    /// (`skip_idle`), so results stay bit-for-bit identical to
    /// [`Machine::run_naive`].
    pub(crate) fn run_wake(&mut self, limit: u64) -> RunSummary {
        let start = self.clock.now();
        let end = start.after(limit);
        let n_dirs = self.dirs.len();
        let n_comps = 1 + n_dirs + self.cores.len();
        // Every component ticks the first cycle; idleness is only ever
        // proven by a real tick that reports no progress.
        let mut wheel = WakeWheel::new(n_comps, start.as_u64() + 1);
        // Cycle of each component's most recent real tick: the replay
        // basis for the gap behind a wake.
        let mut last_tick: Vec<Cycle> = vec![start; n_comps];
        let mut due: Vec<u32> = Vec::with_capacity(n_comps);
        let mut woken: Vec<tenways_sim::NodeId> = Vec::new();

        while !self.all_done() && self.clock.now() < end {
            let t = match wheel.next_due() {
                Some(at) if at <= end.as_u64() => Cycle::new(at),
                // Nothing due before the limit (deadlock, or events past
                // the cut-off): idle out the rest of the run.
                _ => {
                    let now = self.clock.now();
                    self.clock.advance_by(end - now);
                    break;
                }
            };
            let now = self.clock.now();
            debug_assert!(t > now, "due cycle must be in the future");
            self.clock.advance_by(t - now);
            wheel.take_due(t.as_u64(), &mut due);

            // The fabric ticks first (component 0 sorts first). Its
            // deliveries this cycle wake the owning components *this*
            // cycle — in naive stepping they would drain their inboxes in
            // the same cycle the fabric filled them.
            if due.first() == Some(&Self::FABRIC_COMP) {
                let gap = t.as_u64() - 1 - last_tick[0].as_u64();
                if gap > 0 {
                    self.fabric.skip_idle(last_tick[0], gap);
                }
                woken.clear();
                let progress = self.fabric.tick_observed(t, &mut woken);
                last_tick[0] = t;
                let mut grew = false;
                for &dst in &woken {
                    let comp = self.comp_of_node(dst);
                    if wheel.wake_of(comp) != t.as_u64() {
                        due.push(comp);
                        grew = true;
                    }
                }
                if grew {
                    due[1..].sort_unstable();
                    due.dedup();
                }
                // The fabric's own wake is refreshed at the end of the
                // cycle, after every component has had a chance to send.
                let _ = progress;
            }

            for &comp in &due {
                let comp = comp as usize;
                if comp == Self::FABRIC_COMP as usize {
                    continue;
                }
                let basis = last_tick[comp];
                let gap = t.as_u64() - 1 - basis.as_u64();
                last_tick[comp] = t;
                if comp <= n_dirs {
                    // Directory bank: an idle bank tick mutates nothing
                    // (see `DirectoryBank::next_event`), so slept cycles
                    // need no replay.
                    let dir = &mut self.dirs[comp - 1];
                    let progress = dir.tick(t, &mut self.fabric);
                    let at = if progress {
                        t.as_u64() + 1
                    } else {
                        dir.next_event(t).map_or(NEVER, Cycle::as_u64)
                    };
                    wheel.set(comp as u32, at);
                } else {
                    // Core complex: L1 then core, exactly the per-cycle
                    // order of `step_tracked`.
                    let c = comp - 1 - n_dirs;
                    if gap > 0 {
                        self.l1s[c].skip_idle(basis, gap);
                        self.cores[c].skip_idle(basis, gap);
                    }
                    let mut progress = self.l1s[c].tick(t, &mut self.fabric);
                    progress |=
                        self.cores[c].tick(t, &mut self.l1s[c], &mut self.fabric, &mut self.mem);
                    progress |= self.l1s[c].took_one_time_fx();
                    let at = if progress {
                        t.as_u64() + 1
                    } else {
                        let l1 = self.l1s[c].next_event(t).map_or(NEVER, Cycle::as_u64);
                        let core = self.cores[c].next_event(t).map_or(NEVER, Cycle::as_u64);
                        l1.min(core)
                    };
                    wheel.set(comp as u32, at);
                }
            }

            // Any component may have handed the fabric a message this
            // cycle (`pending_inject > 0` ⇒ `next_event` = t+1), so the
            // fabric's wake is recomputed unconditionally — O(1) with the
            // cached delivery minimum.
            let at = self.fabric.next_event(t).map_or(NEVER, Cycle::as_u64);
            wheel.set(Self::FABRIC_COMP, at);
        }

        // Cycles between each component's last real tick and the end of
        // the run were slept through; replay their stat-only effects so
        // totals match naive stepping, which ticks everything up to the
        // final cycle.
        let fin = self.clock.now();
        if fin > start {
            let gap = fin.as_u64() - last_tick[0].as_u64();
            if gap > 0 {
                self.fabric.skip_idle(last_tick[0], gap);
            }
            for c in 0..self.cores.len() {
                let comp = 1 + n_dirs + c;
                let basis = last_tick[comp];
                let gap = fin.as_u64() - basis.as_u64();
                if gap > 0 {
                    self.l1s[c].skip_idle(basis, gap);
                    self.cores[c].skip_idle(basis, gap);
                }
            }
        }
        self.finish(start)
    }

    /// Runs with plain one-cycle-at-a-time stepping, never fast-forwarding.
    /// Reference loop for regression tests and benchmark baselines.
    pub fn run_naive(&mut self, limit: u64) -> RunSummary {
        let start = self.clock.now();
        while !self.all_done() && self.clock.now() - start < limit {
            self.step();
        }
        self.finish(start)
    }

    pub(crate) fn finish(&mut self, start: Cycle) -> RunSummary {
        for c in &mut self.cores {
            c.flush_accounting();
        }
        RunSummary {
            cycles: self.clock.now() - start,
            finished: self.all_done(),
            core_done_at: self
                .cores
                .iter()
                .map(|c| c.done_at().map(Cycle::as_u64))
                .collect(),
            retired_ops: self.cores.iter().map(Core::retired_ops).sum(),
        }
    }

    /// Merges every component's statistics into one set. Prefixes keep the
    /// sources apart (`cyc.*` core accounting, `l1.*`, `dir.*`, `dram.*`,
    /// `noc.*`, `spec.*`).
    pub fn merged_stats(&self) -> StatSet {
        let mut out = StatSet::new();
        for c in &self.cores {
            out.merge(c.accounting());
            out.merge(c.engine().stats());
        }
        for l1 in &self.l1s {
            out.merge(l1.stats());
        }
        for d in &self.dirs {
            out.merge(d.stats());
            out.merge(d.dram_stats());
        }
        out.merge(self.fabric.stats());
        out
    }

    /// Merged store-buffer occupancy histogram across cores.
    pub fn sb_occupancy(&self) -> Histogram {
        let mut h = Histogram::new(65, 1);
        for c in &self.cores {
            h.merge(c.sb_occupancy());
        }
        h
    }

    /// Merged speculation-depth histogram across cores.
    pub fn spec_depth(&self) -> Histogram {
        let mut h = Histogram::new(256, 1);
        for c in &self.cores {
            h.merge(c.engine().depth_histogram());
        }
        h
    }
}
