//! Conservative epoch-parallel scheduling: the engine behind
//! [`SchedMode::ParallelEpoch`](crate::machine::SchedMode::ParallelEpoch).
//!
//! The machine's scheduling units — fabric, directory banks, and fused
//! core+L1 complexes — interact *only* through fabric messages and the
//! architectural memory. Every fabric message takes at least
//! `Topology::min_latency` cycles (the lookahead window `W`), so a shard
//! of components can free-run its own wake wheel through a window of `W`
//! cycles without observing anything another shard does inside the same
//! window:
//!
//! * **Messages.** An injection at cycle `t ≥ lo` delivers at
//!   `t + W > lo + W - 1 = hi`, past the window — so *every* flight-queue
//!   insert (intra- and cross-shard alike) is staged and merged at the
//!   boundary, where sorting by `(inject_at, src)` byte-reproduces the
//!   order a sequential injection scan would have produced.
//! * **Memory.** A core can only read another core's write after the
//!   block's ownership crosses the fabric (recall, then grant) — at least
//!   `2W` cycles, i.e. at least one boundary merge, after the write. So
//!   each shard runs the window against a frozen base plus a private
//!   delta ([`EpochMem`]), and the deltas of one window are word-disjoint.
//!
//! Within a shard the loop is exactly `Machine::run_wake` restricted to
//! the local components, preserving the canonical fabric → directory
//! banks → core complexes tie-break; per-node fabric state (injection
//! is source-local, delivery destination-local) makes the per-shard
//! fabric views behave identically to one shared fabric. Results are
//! therefore bit-for-bit identical to every sequential mode, at any
//! worker count.
//!
//! Run termination needs one refinement: the sequential loop stops right
//! after the cycle `T` in which the last core finishes, leaving later
//! events unprocessed. A shard therefore *pauses* as soon as its local
//! cores are all done (phase 1); when every shard has paused, the true
//! `T` is the maximum local completion cycle and each shard is told to
//! continue through exactly `T` (phase 2). If any shard is still
//! running, paused shards are continued through the window end instead,
//! because the run — and therefore activity on their directories and
//! fabric nodes — goes on.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use tenways_coherence::{DirectoryBank, L1Controller};
use tenways_noc::{Fabric, Staged};
use tenways_sim::{Cycle, NodeId};

use crate::archmem::{ArchMem, EpochMem};
use crate::core::Core;
use crate::machine::{Machine, RunSummary};
use crate::wake::{WakeWheel, NEVER};

type Msg = tenways_coherence::Msg;

/// Main-to-worker commands, one channel per shard.
enum Cmd {
    /// Run the window `[lo, hi]`, after absorbing `batch` (this shard's
    /// share of the staged inserts, already in canonical order) and
    /// installing `base`/`delta` as the window's memory view.
    Epoch {
        batch: Vec<Staged<Msg>>,
        base: Arc<ArchMem>,
        delta: ArchMem,
        lo: u64,
        hi: u64,
    },
    /// Resume a paused shard and process remaining events through `t`.
    Continue { t: u64 },
    /// Replay tail idle cycles up to `t` and ship the components back.
    Finish { t: u64 },
}

/// Worker-to-main replies, one shared channel tagged by shard index.
enum Reply {
    /// Phase-1 stop: every local core is done; `done_cycle` is the cycle
    /// the last one finished (possibly in an earlier window).
    Paused { done_cycle: u64 },
    /// Window complete: staged inserts, the window's write delta, and
    /// the shard's next due cycle (`NEVER` when fully idle).
    EpochDone {
        staged: Vec<Staged<Msg>>,
        delta: ArchMem,
        next_due: u64,
    },
    /// Response to [`Cmd::Finish`]: the shard's components, for
    /// reassembly into the machine.
    Finished(Box<ShardParts>),
}

/// Components returned by a shard at teardown, with their global indices.
struct ShardParts {
    fabric: Fabric<Msg>,
    dirs: Vec<(usize, DirectoryBank)>,
    cores: Vec<(usize, L1Controller, Core)>,
}

/// One shard: a full-size fabric view holding only the owned nodes'
/// queues, the owned directory banks and core complexes, and a private
/// wake wheel over local components (0 = fabric view, then local dirs in
/// ascending global order, then local core complexes likewise).
struct Shard {
    fabric: Fabric<Msg>,
    dirs: Vec<(usize, DirectoryBank)>,
    cores: Vec<(usize, L1Controller, Core)>,
    /// Global fabric node → local wheel component (`u32::MAX` foreign).
    comp_of_node: Vec<u32>,
    wheel: WakeWheel,
    /// Cycle of each local component's most recent real tick.
    last_tick: Vec<Cycle>,
    due: Vec<u32>,
    woken: Vec<NodeId>,
    /// The window's memory view; installed per epoch, torn down at the
    /// boundary so the base `Arc` is released before the merge.
    mem: Option<EpochMem>,
}

const FABRIC_COMP: u32 = 0;

impl Shard {
    fn all_done(&self) -> bool {
        self.cores.iter().all(|(_, _, c)| c.is_done())
    }

    fn done_cycle(&self) -> u64 {
        self.cores
            .iter()
            .filter_map(|(_, _, c)| c.done_at())
            .map(Cycle::as_u64)
            .max()
            .unwrap_or(0)
    }

    /// Processes every due local event through `hi` — the body of
    /// `Machine::run_wake`, restricted to this shard's components. With
    /// `stop_on_done`, returns `true` (paused) as soon as every local
    /// core is done; otherwise returns `false` with the wheel's next due
    /// cycle beyond `hi`.
    fn run_window(&mut self, hi: u64, stop_on_done: bool) -> bool {
        let n_dirs = self.dirs.len();
        loop {
            if stop_on_done && self.all_done() {
                return true;
            }
            let t = match self.wheel.next_due() {
                Some(at) if at <= hi => Cycle::new(at),
                _ => return false,
            };
            self.wheel.take_due(t.as_u64(), &mut self.due);

            // The fabric view ticks first; deliveries wake the owning
            // local components this same cycle.
            if self.due.first() == Some(&FABRIC_COMP) {
                let gap = t.as_u64() - 1 - self.last_tick[0].as_u64();
                if gap > 0 {
                    self.fabric.skip_idle(self.last_tick[0], gap);
                }
                self.woken.clear();
                self.fabric.tick_observed(t, &mut self.woken);
                self.last_tick[0] = t;
                let mut grew = false;
                for &dst in &self.woken {
                    let comp = self.comp_of_node[dst.index()];
                    debug_assert_ne!(comp, u32::MAX, "delivery to a foreign node");
                    if self.wheel.wake_of(comp) != t.as_u64() {
                        self.due.push(comp);
                        grew = true;
                    }
                }
                if grew {
                    self.due[1..].sort_unstable();
                    self.due.dedup();
                }
            }

            for i in 0..self.due.len() {
                let comp = self.due[i] as usize;
                if comp == FABRIC_COMP as usize {
                    continue;
                }
                let basis = self.last_tick[comp];
                let gap = t.as_u64() - 1 - basis.as_u64();
                self.last_tick[comp] = t;
                if comp <= n_dirs {
                    let dir = &mut self.dirs[comp - 1].1;
                    let progress = dir.tick(t, &mut self.fabric);
                    let at = if progress {
                        t.as_u64() + 1
                    } else {
                        dir.next_event(t).map_or(NEVER, Cycle::as_u64)
                    };
                    self.wheel.set(comp as u32, at);
                } else {
                    let (_, l1, core) = &mut self.cores[comp - 1 - n_dirs];
                    if gap > 0 {
                        l1.skip_idle(basis, gap);
                        core.skip_idle(basis, gap);
                    }
                    let mem = self.mem.as_mut().expect("window memory installed");
                    let mut progress = l1.tick(t, &mut self.fabric);
                    progress |= core.tick(t, l1, &mut self.fabric, mem);
                    progress |= l1.took_one_time_fx();
                    let at = if progress {
                        t.as_u64() + 1
                    } else {
                        let l1_at = l1.next_event(t).map_or(NEVER, Cycle::as_u64);
                        let core_at = core.next_event(t).map_or(NEVER, Cycle::as_u64);
                        l1_at.min(core_at)
                    };
                    self.wheel.set(comp as u32, at);
                }
            }

            let at = self.fabric.next_event(t).map_or(NEVER, Cycle::as_u64);
            self.wheel.set(FABRIC_COMP, at);
        }
    }

    /// Mirror of `run_wake`'s end-of-run replay: slept cycles between
    /// each component's last real tick and the final cycle are stat-only
    /// and replayed in bulk (directory banks need none).
    fn finish_tail(&mut self, fin: u64) {
        let gap = fin.saturating_sub(self.last_tick[0].as_u64());
        if gap > 0 {
            self.fabric.skip_idle(self.last_tick[0], gap);
        }
        let n_dirs = self.dirs.len();
        for (i, (_, l1, core)) in self.cores.iter_mut().enumerate() {
            let basis = self.last_tick[1 + n_dirs + i];
            let gap = fin.saturating_sub(basis.as_u64());
            if gap > 0 {
                l1.skip_idle(basis, gap);
                core.skip_idle(basis, gap);
            }
        }
    }

    fn into_parts(self) -> ShardParts {
        ShardParts {
            fabric: self.fabric,
            dirs: self.dirs,
            cores: self.cores,
        }
    }
}

/// What a shard yields at an epoch boundary: its staged cross-shard
/// flights, its memory write delta, and its wheel's next due cycle.
type EpochYield = (Vec<Staged<Msg>>, ArchMem, u64);

/// Receives with a bounded spin before parking: epochs are a handful of
/// simulated cycles, so the channel round-trip dominates wall time if
/// every boundary pays a futex sleep/wake. Spinning only pays when every
/// participant has its own hardware thread — on an oversubscribed host a
/// spinner steals the quantum from the peer it is waiting for — so
/// `spin` is decided once per run from the host's parallelism.
fn spin_recv<T>(rx: &Receiver<T>, spin: bool) -> Result<T, std::sync::mpsc::RecvError> {
    use std::sync::mpsc::TryRecvError;
    if spin {
        for _ in 0..50_000 {
            match rx.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Empty) => std::hint::spin_loop(),
                Err(TryRecvError::Disconnected) => return Err(std::sync::mpsc::RecvError),
            }
        }
    }
    rx.recv()
}

/// A worker thread's life: absorb, run the window, pause/continue as
/// told, surrender the staged inserts and write delta, repeat — until
/// [`Cmd::Finish`] ships the components back.
fn worker(
    mut shard: Shard,
    cmds: &Receiver<Cmd>,
    replies: &Sender<(usize, Reply)>,
    idx: usize,
    spin: bool,
) {
    while let Ok(cmd) = spin_recv(cmds, spin) {
        match cmd {
            Cmd::Epoch {
                batch,
                base,
                delta,
                lo,
                hi,
            } => {
                shard.fabric.absorb_staged(batch);
                // Refresh the fabric's wake: absorbed cross-shard
                // flights may be due before the previously cached wake
                // (the stale-min hazard pinned in tenways-noc's tests).
                // Every absorbed delivery is at or after `lo`, so the
                // refreshed wake never lands behind the wheel's base.
                let at = shard
                    .fabric
                    .next_event(Cycle::new(lo - 1))
                    .map_or(NEVER, Cycle::as_u64);
                shard.wheel.set(FABRIC_COMP, at);
                shard.mem = Some(EpochMem::new(base, delta));
                if shard.run_window(hi, true) {
                    let done_cycle = shard.done_cycle();
                    replies
                        .send((idx, Reply::Paused { done_cycle }))
                        .expect("main thread alive");
                    match spin_recv(cmds, spin).expect("main thread alive") {
                        Cmd::Continue { t } => {
                            shard.run_window(t, false);
                        }
                        _ => unreachable!("paused shard expects Continue"),
                    }
                }
                let staged = shard.fabric.take_staged();
                let next_due = shard.wheel.next_due().unwrap_or(NEVER);
                let (base, delta) = shard.mem.take().expect("installed above").into_parts();
                // Release the base handle *before* replying: once every
                // shard has replied, the main thread's handle is unique
                // and the boundary merge can mutate in place.
                drop(base);
                replies
                    .send((
                        idx,
                        Reply::EpochDone {
                            staged,
                            delta,
                            next_due,
                        },
                    ))
                    .expect("main thread alive");
            }
            Cmd::Continue { .. } => unreachable!("Continue outside a pause"),
            Cmd::Finish { t } => {
                shard.finish_tail(t);
                replies
                    .send((idx, Reply::Finished(Box::new(shard.into_parts()))))
                    .expect("main thread alive");
                return;
            }
        }
    }
}

/// Runs the machine under epoch-parallel scheduling. Falls back to the
/// sequential wake scheduler when the machine cannot shard (fewer than
/// two usable workers) or the topology's minimum latency is zero (no
/// lookahead window).
pub(crate) fn run(m: &mut Machine, limit: u64, workers: usize) -> RunSummary {
    let n_cores = m.cores.len();
    let shards_n = workers.max(1).min(n_cores);
    let window = m.fabric.topology().min_latency(m.fabric.nodes());
    if shards_n <= 1 || window == 0 {
        return m.run_wake(limit);
    }
    let start = m.clock.now();
    let end = start.after(limit).as_u64();

    // ---- shard the machine: nodes round-robin by kind ----
    let owner = move |node: NodeId| -> usize {
        if node.index() < n_cores {
            node.index() % shards_n
        } else {
            (node.index() - n_cores) % shards_n
        }
    };
    let nodes = m.fabric.nodes();
    let placeholder = Fabric::new(1, 0, 1, 1);
    let views = std::mem::replace(&mut m.fabric, placeholder).split(shards_n, owner);
    let mut dir_parts: Vec<Vec<(usize, DirectoryBank)>> =
        (0..shards_n).map(|_| Vec::new()).collect();
    for (b, dir) in m.dirs.drain(..).enumerate() {
        dir_parts[b % shards_n].push((b, dir));
    }
    let mut core_parts: Vec<Vec<(usize, L1Controller, Core)>> =
        (0..shards_n).map(|_| Vec::new()).collect();
    for (c, (l1, core)) in m.l1s.drain(..).zip(m.cores.drain(..)).enumerate() {
        core_parts[c % shards_n].push((c, l1, core));
    }
    let mut shards: Vec<Shard> = Vec::with_capacity(shards_n);
    for (s, mut view) in views.into_iter().enumerate() {
        view.set_staging(true);
        let dirs = std::mem::take(&mut dir_parts[s]);
        let cores = std::mem::take(&mut core_parts[s]);
        let n_comps = 1 + dirs.len() + cores.len();
        let mut comp_of_node = vec![u32::MAX; nodes];
        for (i, (b, _)) in dirs.iter().enumerate() {
            comp_of_node[n_cores + b] = (1 + i) as u32;
        }
        for (i, (c, _, _)) in cores.iter().enumerate() {
            comp_of_node[*c] = (1 + dirs.len() + i) as u32;
        }
        shards.push(Shard {
            fabric: view,
            dirs,
            cores,
            comp_of_node,
            wheel: WakeWheel::new(n_comps, start.as_u64() + 1),
            last_tick: vec![start; n_comps],
            due: Vec::with_capacity(n_comps),
            woken: Vec::new(),
            mem: None,
        });
    }

    let mut base = Arc::new(std::mem::take(&mut m.mem));
    let mut deltas: Vec<Option<ArchMem>> = vec![Some(ArchMem::new()); shards_n];
    let mut pending: Vec<Staged<Msg>> = Vec::new();
    let mut parts: Vec<Option<ShardParts>> = (0..shards_n).map(|_| None).collect();
    let mut t_final = start.as_u64();

    // Spin-wait at epoch boundaries only when every shard worker plus the
    // coordinating thread can hold its own hardware thread; otherwise a
    // spinner burns the quantum the peer it waits on needs to make
    // progress (a 1-CPU host regresses ~40x with unconditional spinning).
    let spin = std::thread::available_parallelism().map_or(1, |n| n.get()) > shards_n;

    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = channel::<(usize, Reply)>();
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(shards_n);
        for (idx, shard) in shards.drain(..).enumerate() {
            let (cmd_tx, cmd_rx) = channel::<Cmd>();
            cmd_txs.push(cmd_tx);
            let reply_tx = reply_tx.clone();
            scope.spawn(move || worker(shard, &cmd_rx, &reply_tx, idx, spin));
        }

        let mut lo = start.as_u64() + 1;
        loop {
            if lo > end {
                // Nothing due before the cut-off (events past the limit,
                // a deadlock, or `limit == 0`): idle out the run.
                t_final = end;
                break;
            }
            let hi = (lo + window - 1).min(end);
            // Route the boundary-merged inserts to their destinations'
            // owners; `absorb_staged` only touches destination queues.
            let mut batches: Vec<Vec<Staged<Msg>>> = (0..shards_n).map(|_| Vec::new()).collect();
            for st in pending.drain(..) {
                batches[owner(st.env.dst)].push(st);
            }
            for (s, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Epoch {
                    batch: std::mem::take(&mut batches[s]),
                    base: Arc::clone(&base),
                    delta: deltas[s].take().expect("delta round-trips"),
                    lo,
                    hi,
                })
                .expect("worker alive");
            }

            // Round 1: exactly one reply per shard.
            let mut paused: Vec<Option<u64>> = vec![None; shards_n];
            let mut dones: Vec<Option<EpochYield>> = (0..shards_n).map(|_| None).collect();
            for _ in 0..shards_n {
                let (s, reply) = spin_recv(&reply_rx, spin).expect("worker alive");
                match reply {
                    Reply::Paused { done_cycle } => paused[s] = Some(done_cycle),
                    Reply::EpochDone {
                        staged,
                        delta,
                        next_due,
                    } => dones[s] = Some((staged, delta, next_due)),
                    Reply::Finished(_) => unreachable!("no Finish sent yet"),
                }
            }

            // A shard pauses iff its cores are done, so all-paused means
            // the run ends this window, at the last completion cycle;
            // otherwise the run goes on and paused shards must process
            // their remaining events through the window end.
            let all_paused = paused.iter().all(Option::is_some);
            let t = if all_paused {
                paused.iter().flatten().copied().max().expect("non-empty")
            } else {
                hi
            };
            let mut outstanding = 0;
            for (s, tx) in cmd_txs.iter().enumerate() {
                if paused[s].is_some() {
                    tx.send(Cmd::Continue { t }).expect("worker alive");
                    outstanding += 1;
                }
            }
            for _ in 0..outstanding {
                let (s, reply) = spin_recv(&reply_rx, spin).expect("worker alive");
                match reply {
                    Reply::EpochDone {
                        staged,
                        delta,
                        next_due,
                    } => dones[s] = Some((staged, delta, next_due)),
                    _ => unreachable!("continued shard replies EpochDone"),
                }
            }

            // Boundary: every worker has released its base handle, so
            // the main handle is unique and the deltas (word-disjoint by
            // the coherence argument) merge in place.
            let mut next_lo = NEVER;
            let base_mut = Arc::get_mut(&mut base).expect("workers released their handles");
            for (s, done) in dones.iter_mut().enumerate() {
                let (staged, mut delta, next_due) = done.take().expect("every shard replied");
                next_lo = next_lo.min(next_due);
                for st in &staged {
                    next_lo = next_lo.min(st.deliver_at.as_u64());
                }
                pending.extend(staged);
                base_mut.merge_delta(&mut delta);
                deltas[s] = Some(delta);
            }
            // Canonical sequential insert order: by injection cycle,
            // then source node; stable, so per-source FIFO order (the
            // order within each shard's batch) survives.
            pending.sort_by_key(|st| (st.inject_at, st.env.src.index()));

            if all_paused {
                t_final = t;
                break;
            }
            debug_assert!(next_lo > hi, "window left a due event behind");
            lo = next_lo;
        }

        for tx in &cmd_txs {
            tx.send(Cmd::Finish { t: t_final }).expect("worker alive");
        }
        for _ in 0..shards_n {
            let (s, reply) = spin_recv(&reply_rx, spin).expect("worker alive");
            match reply {
                Reply::Finished(p) => parts[s] = Some(*p),
                _ => unreachable!("final replies are Finished"),
            }
        }
    });

    // ---- reassemble the machine ----
    let mut fabric_views = Vec::with_capacity(shards_n);
    let mut dirs: Vec<(usize, DirectoryBank)> = Vec::new();
    let mut cores: Vec<(usize, L1Controller, Core)> = Vec::new();
    for p in parts {
        let p = p.expect("every shard shipped its parts");
        fabric_views.push(p.fabric);
        dirs.extend(p.dirs);
        cores.extend(p.cores);
    }
    let mut fabric = Fabric::recompose(fabric_views);
    // In-flight messages staged at the final boundary belong in the
    // recomposed flight queues, exactly where a sequential run would
    // have left them.
    fabric.absorb_staged(pending);
    m.fabric = fabric;
    dirs.sort_unstable_by_key(|(b, _)| *b);
    m.dirs = dirs.into_iter().map(|(_, d)| d).collect();
    cores.sort_by_key(|(c, _, _)| *c);
    for (_, l1, core) in cores {
        m.l1s.push(l1);
        m.cores.push(core);
    }
    m.mem = Arc::try_unwrap(base).expect("workers exited with the scope");
    let now = m.clock.now().as_u64();
    if t_final > now {
        m.clock.advance_by(t_final - now);
    }
    m.finish(start)
}
