//! Focused tests of the speculation machinery inside the pipeline:
//! checkpoints, rollback/replay, backoff, overflow aborts, forwarding and
//! same-address hazards.

use tenways_cpu::{
    ConsistencyModel, FenceKind, Machine, MachineSpec, MemTag, Op, RmwOp, ScriptProgram,
    SpecConfig, ThreadProgram,
};
use tenways_sim::{Addr, CoreId, MachineConfig};

fn boxed(p: impl ThreadProgram + 'static) -> Box<dyn ThreadProgram> {
    Box::new(p)
}

fn machine(
    model: ConsistencyModel,
    spec: SpecConfig,
    programs: Vec<Box<dyn ThreadProgram>>,
) -> Machine {
    let cfg = MachineConfig::builder()
        .cores(programs.len())
        .build()
        .unwrap();
    let ms = MachineSpec::baseline(model)
        .with_machine(cfg)
        .with_spec(spec);
    Machine::new(&ms, programs)
}

/// A program that counts how many ops it was asked for — detects
/// re-execution after rollback.
#[derive(Debug, Clone)]
struct CountingProgram {
    ops: Vec<Op>,
    pos: usize,
    emitted: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ThreadProgram for CountingProgram {
    fn next_op(&mut self, _last: Option<u64>) -> Option<Op> {
        let op = self.ops.get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
            self.emitted
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        op
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }
}

#[test]
fn rollback_reexecutes_ops_from_the_checkpoint() {
    // Core 0 speculates past a fence while core 1 invalidates its marks.
    let emitted = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let shared = Addr(0x500);
    let mut ops = vec![Op::store(Addr(0x100), 1), Op::Fence(FenceKind::Full)];
    for i in 0..10 {
        ops.push(Op::load(shared.offset(i * 8))); // same block: conflict bait
    }
    let victim = CountingProgram {
        ops: ops.clone(),
        pos: 0,
        emitted: emitted.clone(),
    };
    let attacker = ScriptProgram::new(vec![
        Op::Compute(40),
        Op::store(shared, 99),
        Op::Compute(40),
        Op::store(shared, 100),
    ]);
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::on_demand(),
        vec![boxed(victim), boxed(attacker)],
    );
    let s = m.run(1_000_000);
    assert!(s.finished);
    let stats = m.merged_stats();
    if stats.get("spec.rollbacks") > 0 {
        // Program was asked for more ops than it has: re-execution happened.
        assert!(
            emitted.load(std::sync::atomic::Ordering::Relaxed) > ops.len() as u64,
            "rollback must re-drive the program: emitted {} of {}",
            emitted.load(std::sync::atomic::Ordering::Relaxed),
            ops.len()
        );
    }
    // Regardless of speculation, retired op count is exact (no double retire).
    assert_eq!(m.core(CoreId(0)).retired_ops(), ops.len() as u64);
}

#[test]
fn backoff_reexecution_is_non_speculative() {
    // After a rollback, the replayed ordering point must stall for real:
    // spec.backoffs_cleared counts exactly the rollbacks that replayed.
    let shared = Addr(0x700);
    let mk_victim = || {
        let mut ops = vec![Op::store(Addr(0x100), 1), Op::Fence(FenceKind::Full)];
        for i in 0..8 {
            ops.push(Op::store(shared.offset((i % 2) * 8), i));
        }
        boxed(ScriptProgram::new(ops))
    };
    let attacker = ScriptProgram::new(vec![
        Op::Compute(30),
        Op::Load {
            addr: shared,
            tag: MemTag::Data,
            consume: false,
        },
        Op::Compute(30),
        Op::Load {
            addr: shared,
            tag: MemTag::Data,
            consume: false,
        },
    ]);
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::on_demand(),
        vec![mk_victim(), boxed(attacker)],
    );
    let s = m.run(1_000_000);
    assert!(s.finished);
    let stats = m.merged_stats();
    assert_eq!(
        stats.get("spec.rollbacks"),
        stats.get("spec.backoffs_cleared"),
        "every rollback must complete its non-speculative replay"
    );
}

#[test]
fn overflow_abort_preserves_correctness() {
    // A tiny per-store CAM forces overflow aborts mid-epoch; the final
    // memory state must still be exact.
    let mut ops = vec![Op::Fence(FenceKind::Full)];
    for i in 0..24 {
        ops.push(Op::store(Addr(0x1000 + i * 64), i));
    }
    ops.push(Op::Fence(FenceKind::Full));
    for i in 0..24 {
        ops.push(Op::store(Addr(0x3000 + i * 64), 100 + i));
    }
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::per_store(2),
        vec![boxed(ScriptProgram::new(ops))],
    );
    let s = m.run(1_000_000);
    assert!(s.finished);
    for i in 0..24 {
        assert_eq!(m.mem().read(Addr(0x1000 + i * 64)), i);
        assert_eq!(m.mem().read(Addr(0x3000 + i * 64)), 100 + i);
    }
}

#[test]
fn load_forwards_from_older_rob_store() {
    // A load right behind a store to the same address must return the
    // stored value even before the store drains.
    let a = Addr(0x2000);
    let p = ScriptProgram::new(vec![
        Op::store(a, 77),
        Op::Load {
            addr: a,
            tag: MemTag::Data,
            consume: true,
        },
        // The consumed value steers nothing here, but consume forces the
        // core to resolve it.
    ]);
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    let s = m.run(100_000);
    assert!(s.finished);
    assert_eq!(m.mem().read(a), 77);
}

#[test]
fn load_waits_for_older_same_address_rmw() {
    // load(gen) after rmw(gen) in the same thread must observe the rmw —
    // the regression behind the lu livelock.
    #[derive(Debug, Clone)]
    struct RmwThenRead {
        addr: Addr,
        phase: u8,
        observed: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl ThreadProgram for RmwThenRead {
        fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Some(Op::Rmw {
                        addr: self.addr,
                        rmw: RmwOp::FetchAdd(5),
                        tag: MemTag::Data,
                        consume: false,
                    })
                }
                1 => {
                    self.phase = 2;
                    Some(Op::Load {
                        addr: self.addr,
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
                2 => {
                    self.observed.store(
                        last.expect("consumed value"),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    None
                }
                _ => None,
            }
        }
        fn snapshot(&self) -> Box<dyn ThreadProgram> {
            Box::new(self.clone())
        }
    }
    for model in ConsistencyModel::all() {
        for spec in [SpecConfig::disabled(), SpecConfig::on_demand()] {
            let observed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(u64::MAX));
            let p = RmwThenRead {
                addr: Addr(0x2040),
                phase: 0,
                observed: observed.clone(),
            };
            let mut m = machine(model, spec, vec![boxed(p)]);
            let s = m.run(100_000);
            assert!(s.finished);
            assert_eq!(
                observed.load(std::sync::atomic::Ordering::Relaxed),
                5,
                "under {model} {spec:?}"
            );
        }
    }
}

#[test]
fn epoch_cap_bounds_wasted_work() {
    // With a tiny epoch cap, no rollback can waste more than the cap.
    let shared = Addr(0x900);
    let mk = |base: u64| {
        let mut ops = Vec::new();
        for i in 0..40 {
            ops.push(Op::store(Addr(base + i * 64), i));
            ops.push(Op::Fence(FenceKind::Full));
            ops.push(Op::store(shared, i));
        }
        boxed(ScriptProgram::new(ops))
    };
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::on_demand()
            .with_max_epoch_ops(8)
            .without_adaptive_backoff(),
        vec![mk(0x4000), mk(0x8000)],
    );
    let s = m.run(2_000_000);
    assert!(s.finished);
    let stats = m.merged_stats();
    let rollbacks = stats.get("spec.rollbacks");
    if rollbacks > 0 {
        let mean_waste = stats.get("spec.wasted_ops") as f64 / rollbacks as f64;
        assert!(
            mean_waste <= 9.0,
            "mean wasted ops {mean_waste} exceeds cap+1"
        );
    }
}

#[test]
fn disabled_speculation_never_opens_epochs() {
    let p = ScriptProgram::new(vec![
        Op::store(Addr(0), 1),
        Op::Fence(FenceKind::Full),
        Op::load(Addr(0x100)),
    ]);
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    m.run(100_000);
    assert_eq!(m.merged_stats().get("spec.epochs"), 0);
}

#[test]
fn spec_depth_histogram_populates_under_sc() {
    let mut ops = Vec::new();
    for i in 0..32 {
        ops.push(Op::load(Addr(0x1000 + (i % 8) * 64)));
        ops.push(Op::store(Addr(0x2000 + (i % 8) * 64), i));
    }
    let mut m = machine(
        ConsistencyModel::Sc,
        SpecConfig::on_demand(),
        vec![boxed(ScriptProgram::new(ops))],
    );
    let s = m.run(1_000_000);
    assert!(s.finished);
    let depth = m.spec_depth();
    assert!(depth.count() > 0, "committed epochs must record depths");
    assert!(depth.mean() > 0.0);
}

#[test]
fn sb_occupancy_histogram_tracks_pressure() {
    let mut ops = Vec::new();
    for i in 0..64 {
        ops.push(Op::store(Addr(0x1000 + i * 64), i));
    }
    let mut m = machine(
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(ops))],
    );
    let s = m.run(1_000_000);
    assert!(s.finished);
    let occ = m.sb_occupancy();
    assert!(
        occ.max() >= 2,
        "a store burst must fill the SB: max {}",
        occ.max()
    );
    assert!(occ.max() <= 16, "SB occupancy cannot exceed capacity");
}

#[test]
fn fence_kinds_have_ordered_costs_under_rmo() {
    // full >= release ~ acquire >= none, measured on a store+load pattern.
    let cycles = |fence: Option<FenceKind>| {
        let mut ops = Vec::new();
        for i in 0..16 {
            ops.push(Op::store(Addr(0x1000 + i * 64), i));
            if let Some(k) = fence {
                ops.push(Op::Fence(k));
            }
            ops.push(Op::load(Addr(0x9000 + i * 64)));
        }
        let mut m = machine(
            ConsistencyModel::Rmo,
            SpecConfig::disabled(),
            vec![boxed(ScriptProgram::new(ops))],
        );
        let s = m.run(1_000_000);
        assert!(s.finished);
        s.cycles
    };
    let none = cycles(None);
    let release = cycles(Some(FenceKind::Release));
    let acquire = cycles(Some(FenceKind::Acquire));
    let full = cycles(Some(FenceKind::Full));
    assert!(full >= release, "full {full} < release {release}");
    assert!(full >= acquire, "full {full} < acquire {acquire}");
    assert!(
        full > none,
        "full fence must cost something: {full} vs {none}"
    );
}

#[test]
fn continuous_mode_still_commits_at_program_end() {
    // A short program under continuous mode never reaches the commit
    // interval; the final commit must still flush the overlay.
    let a = Addr(0x3000);
    let p = ScriptProgram::new(vec![
        Op::store(Addr(0x100), 1),
        Op::Fence(FenceKind::Full), // opens an epoch under RMO
        Op::store(a, 42),
    ]);
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::continuous(),
        vec![boxed(p)],
    );
    let s = m.run(100_000);
    assert!(s.finished);
    assert_eq!(m.mem().read(a), 42, "final commit must publish the store");
}

#[test]
fn violations_on_committed_epochs_are_stale() {
    // Mark, commit, then remote write: no rollback should occur.
    let a = Addr(0x600);
    let reader = ScriptProgram::new(vec![
        Op::Fence(FenceKind::Full),
        Op::load(a),
        Op::Compute(500), // idle long enough for the commit to land
    ]);
    let writer = ScriptProgram::new(vec![Op::Compute(200), Op::store(a, 9)]);
    let mut m = machine(
        ConsistencyModel::Rmo,
        SpecConfig::on_demand(),
        vec![boxed(reader), boxed(writer)],
    );
    let s = m.run(1_000_000);
    assert!(s.finished);
    assert_eq!(m.mem().read(a), 9);
}
