//! Machine-level fast-forward invariants: run-limit semantics must be
//! exact even when the limit lands in the middle of a skipped quiescent
//! gap, and every [`SchedMode`] must agree with `run_naive` on summaries
//! and stats.

use tenways_cpu::{
    ConsistencyModel, Machine, MachineSpec, Op, SchedMode, ScriptProgram, ThreadProgram,
};
use tenways_sim::{Addr, MachineConfig};

/// Two cores doing cold strided loads against slow DRAM: almost every
/// cycle is a quiescent wait, so every fast-forward jump is exercised.
fn machine() -> Machine {
    let cfg = MachineConfig::builder()
        .cores(2)
        .dram(4, 150, 24)
        .build()
        .unwrap();
    let ms = MachineSpec::baseline(ConsistencyModel::Tso).with_machine(cfg);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..2u64)
        .map(|c| {
            let ops: Vec<Op> = (0..6u64)
                .flat_map(|i| {
                    [
                        Op::load(Addr(0x1_0000 * (c + 1) + 0x400 * i)),
                        Op::Compute(3),
                        Op::store(Addr(0x2_0000 * (c + 1) + 0x400 * i), i),
                    ]
                })
                .collect();
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect();
    Machine::new(&ms, programs)
}

/// The accelerated schedulers (machine-gap fast-forward, component-
/// granular wake scheduling, and epoch-parallel at several worker
/// counts — including counts above the core count, which clamp) against
/// the naive reference.
const FAST_MODES: [SchedMode; 5] = [
    SchedMode::MachineGap,
    SchedMode::ComponentWake,
    SchedMode::ParallelEpoch { workers: 1 },
    SchedMode::ParallelEpoch { workers: 2 },
    SchedMode::ParallelEpoch { workers: 4 },
];

#[test]
fn limit_is_exact_even_mid_quiescent_gap() {
    // Find the natural run length first, then sweep every cut-off point
    // (each of which may land inside a skipped gap or a slept stretch).
    let full = machine().run(1_000_000);
    assert!(full.finished, "workload must finish unconstrained");
    let len = full.cycles;
    assert!(len > 100, "workload too short to exercise gaps: {len}");

    // Sweeping every cut-off point is quadratic in run length; cover the
    // first DRAM round-trips densely and the rest with a coprime stride so
    // limits land at every phase within skipped gaps.
    let limits = (0..=200u64).chain((200..=len + 2).step_by(7));
    for limit in limits {
        let mut naive = machine();
        let b = naive.run_naive(limit);
        for mode in FAST_MODES {
            let mut ff = machine();
            ff.set_sched(mode);
            let a = ff.run(limit);
            assert!(
                a.cycles <= limit,
                "{mode:?} overshot limit {limit}: {}",
                a.cycles
            );
            assert_eq!(a, b, "{mode:?} summary diverged at limit {limit}");
            assert_eq!(
                ff.merged_stats(),
                naive.merged_stats(),
                "{mode:?} stats diverged at limit {limit}"
            );
        }
    }
}

#[test]
fn every_sched_mode_agrees_with_naive_end_to_end() {
    let mut naive = machine();
    let b = naive.run_naive(1_000_000);
    for mode in FAST_MODES {
        let mut ff = machine();
        ff.set_sched(mode);
        let a = ff.run(1_000_000);
        assert_eq!(a, b, "{mode:?} summary diverged");
        assert_eq!(ff.merged_stats(), naive.merged_stats(), "{mode:?} stats");
        assert_eq!(
            ff.sb_occupancy(),
            naive.sb_occupancy(),
            "{mode:?}: store-buffer occupancy histograms diverged"
        );
        for addr in [0x2_0000u64, 0x2_0400, 0x4_0000] {
            assert_eq!(
                ff.mem().read(Addr(addr)),
                naive.mem().read(Addr(addr)),
                "{mode:?} memory image diverged at {addr:#x}"
            );
        }
    }
}
