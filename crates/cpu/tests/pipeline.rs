//! End-to-end pipeline tests: baselines, consistency-model ordering
//! effects, speculation correctness, and accounting invariants.

use tenways_core::SpecConfig;
use tenways_cpu::{
    ConsistencyModel, FenceKind, Machine, MachineSpec, MemTag, Op, RmwOp, ScriptProgram,
    ThreadProgram,
};
use tenways_sim::{Addr, CoreId, MachineConfig};

fn cfg(cores: usize) -> MachineConfig {
    MachineConfig::builder().cores(cores).build().unwrap()
}

fn boxed(p: impl ThreadProgram + 'static) -> Box<dyn ThreadProgram> {
    Box::new(p)
}

/// Runs one program per core under `model`/`spec`, returning the machine
/// and summary.
fn run(
    model: ConsistencyModel,
    spec: SpecConfig,
    programs: Vec<Box<dyn ThreadProgram>>,
) -> (Machine, tenways_cpu::RunSummary) {
    let ms = MachineSpec::baseline(model)
        .with_machine(cfg(programs.len()))
        .with_spec(spec);
    let mut m = Machine::new(&ms, programs);
    let s = m.run(2_000_000);
    assert!(s.finished, "run did not finish: {s:?}");
    (m, s)
}

// ---------- custom reactive programs for the tests ----------

/// Spins on `flag` (consume loads) until it reads `want`, then loads `data`
/// and finishes.
#[derive(Debug, Clone)]
struct SpinReader {
    flag: Addr,
    data: Addr,
    want: u64,
    state: u8,
}

impl ThreadProgram for SpinReader {
    fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
        match self.state {
            0 => {
                self.state = 1;
                Some(Op::Load {
                    addr: self.flag,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            1 => {
                if last == Some(self.want) {
                    self.state = 2;
                    Some(Op::Fence(FenceKind::Acquire))
                } else {
                    Some(Op::Load {
                        addr: self.flag,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            2 => {
                self.state = 3;
                Some(Op::Load {
                    addr: self.data,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            _ => None,
        }
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "spin-reader"
    }
}

/// Computes a while, stores `data`, releases, then sets `flag`.
fn writer_script(flag: Addr, data: Addr) -> ScriptProgram {
    ScriptProgram::new(vec![
        Op::Compute(300),
        Op::store(data, 42),
        Op::Fence(FenceKind::Release),
        Op::Store {
            addr: flag,
            value: 1,
            tag: MemTag::Lock,
        },
    ])
}

/// Issues `n` atomic increments to `counter`.
#[derive(Debug, Clone)]
struct Incrementer {
    counter: Addr,
    left: u64,
}

impl ThreadProgram for Incrementer {
    fn next_op(&mut self, _last: Option<u64>) -> Option<Op> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        Some(Op::Rmw {
            addr: self.counter,
            rmw: RmwOp::FetchAdd(1),
            tag: MemTag::Data,
            consume: false,
        })
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "incrementer"
    }
}

// ---------- single-core basics ----------

#[test]
fn single_core_script_completes_and_writes_memory() {
    let p = ScriptProgram::new(vec![
        Op::Compute(10),
        Op::store(Addr(0x100), 7),
        Op::load(Addr(0x100)),
    ]);
    let (m, s) = run(
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    assert_eq!(s.retired_ops, 3);
    assert_eq!(m.mem().read(Addr(0x100)), 7);
    assert!(s.cycles > 10, "compute latency must show");
}

#[test]
fn store_buffer_forwarding_returns_own_store() {
    let p = ScriptProgram::new(vec![
        Op::store(Addr(0x40), 99),
        Op::Load {
            addr: Addr(0x40),
            tag: MemTag::Data,
            consume: true,
        },
    ]);
    let (m, _) = run(
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    // The consumed value is recorded in... we can't reach the ScriptProgram
    // after the run (it is owned by the core). Verify via memory instead:
    assert_eq!(m.mem().read(Addr(0x40)), 99);
}

#[test]
fn compute_only_program_finishes_in_about_its_latency() {
    let p = ScriptProgram::new(vec![Op::Compute(100)]);
    let (_, s) = run(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    assert!(s.cycles >= 100 && s.cycles < 140, "got {}", s.cycles);
}

#[test]
fn rmw_returns_old_value_and_applies_new() {
    let p = ScriptProgram::new(vec![
        Op::store(Addr(0x8), 5),
        Op::Fence(FenceKind::Full),
        Op::Rmw {
            addr: Addr(0x8),
            rmw: RmwOp::FetchAdd(3),
            tag: MemTag::Data,
            consume: true,
        },
    ]);
    let (m, _) = run(
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    assert_eq!(m.mem().read(Addr(0x8)), 8);
}

#[test]
fn cas_only_swaps_on_match() {
    let p = ScriptProgram::new(vec![
        Op::Rmw {
            addr: Addr(0x8),
            rmw: RmwOp::Cas {
                expected: 0,
                desired: 11,
            },
            tag: MemTag::Data,
            consume: false,
        },
        Op::Rmw {
            addr: Addr(0x8),
            rmw: RmwOp::Cas {
                expected: 0,
                desired: 22,
            },
            tag: MemTag::Data,
            consume: false,
        },
    ]);
    let (m, _) = run(
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        vec![boxed(p)],
    );
    assert_eq!(m.mem().read(Addr(0x8)), 11, "second CAS must fail");
}

// ---------- consistency-model ordering effects ----------

/// A pointer-chase-free, store+load mix that SC must serialize.
fn mem_heavy_script(base: u64, n: u64) -> ScriptProgram {
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(Op::store(Addr(base + 8 * i), i));
        ops.push(Op::load(Addr(base + 8 * ((i * 7) % n))));
    }
    ScriptProgram::new(ops)
}

#[test]
fn sc_is_slower_than_tso_is_not_faster_than_rmo() {
    let cycles = |model| {
        let (_, s) = run(
            model,
            SpecConfig::disabled(),
            vec![boxed(mem_heavy_script(0x1000, 64))],
        );
        s.cycles
    };
    let sc = cycles(ConsistencyModel::Sc);
    let tso = cycles(ConsistencyModel::Tso);
    let rmo = cycles(ConsistencyModel::Rmo);
    assert!(sc > tso, "SC {sc} must be slower than TSO {tso}");
    assert!(tso >= rmo, "TSO {tso} must not beat RMO {rmo}");
}

#[test]
fn full_fence_costs_cycles_under_rmo() {
    let plain: Vec<Op> = vec![Op::store(Addr(0), 1), Op::load(Addr(0x2000))];
    let mut fenced = plain.clone();
    fenced.insert(1, Op::Fence(FenceKind::Full));
    let c_plain = run(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(plain))],
    )
    .1
    .cycles;
    let c_fenced = run(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(fenced))],
    )
    .1
    .cycles;
    assert!(
        c_fenced > c_plain,
        "fence must cost cycles: fenced {c_fenced} vs plain {c_plain}"
    );
}

#[test]
fn fences_are_free_under_sc() {
    let plain: Vec<Op> = vec![Op::store(Addr(0), 1), Op::load(Addr(0x2000))];
    let mut fenced = plain.clone();
    fenced.insert(1, Op::Fence(FenceKind::Full));
    let c_plain = run(
        ConsistencyModel::Sc,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(plain))],
    )
    .1
    .cycles;
    let c_fenced = run(
        ConsistencyModel::Sc,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(fenced))],
    )
    .1
    .cycles;
    assert_eq!(c_plain, c_fenced, "SC already orders everything");
}

#[test]
fn tso_atomic_drains_store_buffer() {
    // Many stores followed by an atomic: TSO must wait for the drain, RMO
    // must not.
    let mut ops = Vec::new();
    for i in 0..12 {
        ops.push(Op::store(Addr(0x3000 + 64 * i), i));
    }
    ops.push(Op::Rmw {
        addr: Addr(0x9000),
        rmw: RmwOp::FetchAdd(1),
        tag: MemTag::Data,
        consume: true,
    });
    let tso = run(
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(ops.clone()))],
    )
    .1
    .cycles;
    let rmo = run(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(ScriptProgram::new(ops))],
    )
    .1
    .cycles;
    assert!(
        tso > rmo,
        "TSO {tso} should pay for the atomic, RMO {rmo} not"
    );
}

// ---------- multi-core communication ----------

#[test]
fn message_passing_flag_protocol_works() {
    let flag = Addr(0x100);
    let data = Addr(0x180);
    for model in ConsistencyModel::all() {
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            boxed(writer_script(flag, data)),
            boxed(SpinReader {
                flag,
                data,
                want: 1,
                state: 0,
            }),
        ];
        let (m, _) = run(model, SpecConfig::disabled(), programs);
        assert_eq!(m.mem().read(data), 42, "under {model}");
        assert_eq!(m.mem().read(flag), 1, "under {model}");
    }
}

#[test]
fn atomic_increments_are_atomic_across_cores() {
    let counter = Addr(0x400);
    for model in ConsistencyModel::all() {
        let programs: Vec<Box<dyn ThreadProgram>> = (0..4)
            .map(|_| boxed(Incrementer { counter, left: 50 }))
            .collect();
        let (m, _) = run(model, SpecConfig::disabled(), programs);
        assert_eq!(m.mem().read(counter), 200, "lost updates under {model}");
    }
}

#[test]
fn atomic_increments_survive_speculation() {
    let counter = Addr(0x400);
    for spec in [
        SpecConfig::on_demand(),
        SpecConfig::continuous(),
        SpecConfig::per_store(8),
    ] {
        for model in ConsistencyModel::all() {
            let programs: Vec<Box<dyn ThreadProgram>> = (0..4)
                .map(|_| boxed(Incrementer { counter, left: 50 }))
                .collect();
            let (m, _) = run(model, spec, programs);
            assert_eq!(
                m.mem().read(counter),
                200,
                "lost updates under {model} with {spec:?}"
            );
        }
    }
}

#[test]
fn message_passing_survives_speculation() {
    let flag = Addr(0x100);
    let data = Addr(0x180);
    for spec in [SpecConfig::on_demand(), SpecConfig::continuous()] {
        for model in ConsistencyModel::all() {
            let programs: Vec<Box<dyn ThreadProgram>> = vec![
                boxed(writer_script(flag, data)),
                boxed(SpinReader {
                    flag,
                    data,
                    want: 1,
                    state: 0,
                }),
            ];
            let (m, _) = run(model, spec, programs);
            assert_eq!(m.mem().read(data), 42, "under {model} with {spec:?}");
        }
    }
}

// ---------- speculation performance & mechanics ----------

#[test]
fn speculation_recovers_most_of_the_sc_gap() {
    let prog = || boxed(mem_heavy_script(0x1000, 64));
    let sc_base = run(ConsistencyModel::Sc, SpecConfig::disabled(), vec![prog()])
        .1
        .cycles;
    let sc_spec = run(ConsistencyModel::Sc, SpecConfig::on_demand(), vec![prog()])
        .1
        .cycles;
    let rmo = run(ConsistencyModel::Rmo, SpecConfig::disabled(), vec![prog()])
        .1
        .cycles;
    assert!(
        sc_spec < sc_base,
        "speculation must help SC: {sc_spec} vs {sc_base}"
    );
    // InvisiFence's headline: speculative SC approaches RMO.
    let gap_base = sc_base as f64 / rmo as f64;
    let gap_spec = sc_spec as f64 / rmo as f64;
    assert!(
        gap_spec < 1.3 && gap_base > gap_spec,
        "spec-SC/RMO = {gap_spec:.2}, base-SC/RMO = {gap_base:.2}"
    );
}

#[test]
fn speculation_commits_are_recorded() {
    let (m, _) = run(
        ConsistencyModel::Sc,
        SpecConfig::on_demand(),
        vec![boxed(mem_heavy_script(0x1000, 32))],
    );
    let stats = m.merged_stats();
    assert!(stats.get("spec.epochs") > 0);
    assert!(stats.get("spec.commits") > 0);
}

#[test]
fn contended_speculation_rolls_back_and_stays_correct() {
    // Two cores hammer the same two blocks with stores; speculation will
    // conflict and roll back, but final values must reflect some serial
    // order (each addr holds one of the written values).
    let mk = |v: u64| {
        let mut ops = Vec::new();
        for i in 0..30 {
            ops.push(Op::store(Addr(0x500), v + i));
            ops.push(Op::store(Addr(0x540), v + i));
            ops.push(Op::Fence(FenceKind::Full));
        }
        boxed(ScriptProgram::new(ops))
    };
    let programs: Vec<Box<dyn ThreadProgram>> = vec![mk(1000), mk(2000)];
    let (m, _) = run(ConsistencyModel::Rmo, SpecConfig::on_demand(), programs);
    let a = m.mem().read(Addr(0x500));
    let b = m.mem().read(Addr(0x540));
    assert!(
        (1000..1030).contains(&a) || (2000..2030).contains(&a),
        "addr 0x500 holds garbage: {a}"
    );
    assert!(
        (1000..1030).contains(&b) || (2000..2030).contains(&b),
        "addr 0x540 holds garbage: {b}"
    );
}

#[test]
fn per_store_cap_stalls_more_than_block_granularity() {
    // Store-heavy workload: the capped design must stall where
    // block-granularity sails through speculatively.
    let prog = || {
        let mut ops = Vec::new();
        for i in 0..64 {
            ops.push(Op::store(Addr(0x7000 + 64 * i), i));
        }
        ops.push(Op::Fence(FenceKind::Full));
        for i in 0..64 {
            ops.push(Op::store(Addr(0x9000 + 64 * i), i));
        }
        boxed(ScriptProgram::new(ops))
    };
    let unlimited = run(ConsistencyModel::Rmo, SpecConfig::on_demand(), vec![prog()])
        .1
        .cycles;
    let capped = run(
        ConsistencyModel::Rmo,
        SpecConfig::per_store(2),
        vec![prog()],
    )
    .1
    .cycles;
    assert!(
        capped >= unlimited,
        "cap must not be faster: {capped} vs {unlimited}"
    );
}

// ---------- accounting invariants ----------

#[test]
fn cycle_buckets_sum_to_active_cycles() {
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        boxed(mem_heavy_script(0x1000, 32)),
        boxed(mem_heavy_script(0x8000, 16)),
    ];
    let ms = MachineSpec::baseline(ConsistencyModel::Tso).with_machine(cfg(2));
    let mut m = Machine::new(&ms, programs);
    let s = m.run(2_000_000);
    assert!(s.finished);
    for core in [CoreId(0), CoreId(1)] {
        let acct = m.core(core).accounting();
        let total: u64 = acct
            .iter()
            .filter(|(k, _)| k.starts_with("cyc."))
            .map(|(_, v)| v)
            .sum();
        let done = m.core(core).done_at().unwrap().as_u64();
        assert_eq!(
            total, done,
            "core {core} buckets {total} != active cycles {done}"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let go = || {
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            boxed(mem_heavy_script(0x1000, 48)),
            boxed(mem_heavy_script(0x1000, 48)), // same addresses: contention
        ];
        run(ConsistencyModel::Tso, SpecConfig::on_demand(), programs).1
    };
    assert_eq!(go(), go());
}

#[test]
fn summary_throughput_is_sane() {
    let (_, s) = run(
        ConsistencyModel::Rmo,
        SpecConfig::disabled(),
        vec![boxed(mem_heavy_script(0x1000, 32))],
    );
    assert!(s.throughput() > 0.0 && s.throughput() <= 2.0);
}
