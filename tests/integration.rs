//! Cross-crate integration tests driven through the `tenways` facade.

use tenways::prelude::*;

fn small(threads: usize, scale: u64) -> WorkloadParams {
    WorkloadParams {
        threads,
        scale,
        seed: 13,
    }
}

#[test]
fn facade_reexports_compose() {
    // The prelude alone is enough to run an experiment end to end.
    let r = Experiment::new(WorkloadKind::RadixLike)
        .params(small(2, 2))
        .model(ConsistencyModel::Tso)
        .run()
        .unwrap();
    assert!(r.summary.finished);
    assert!(r.breakdown.total() > 0);
}

#[test]
fn headline_shape_sc_speculation_approaches_rmo() {
    // The reproduction's central claim, checked end to end on two kernels.
    for kind in [WorkloadKind::OltpLike, WorkloadKind::ApacheLike] {
        let sc = Experiment::new(kind)
            .params(small(4, 4))
            .model(ConsistencyModel::Sc)
            .run()
            .unwrap();
        let sc_if = Experiment::new(kind)
            .params(small(4, 4))
            .model(ConsistencyModel::Sc)
            .spec(SpecConfig::on_demand())
            .run()
            .unwrap();
        let rmo = Experiment::new(kind)
            .params(small(4, 4))
            .model(ConsistencyModel::Rmo)
            .run()
            .unwrap();
        assert!(
            sc_if.summary.cycles < sc.summary.cycles,
            "{}: speculation must beat the SC baseline ({} vs {})",
            kind.name(),
            sc_if.summary.cycles,
            sc.summary.cycles
        );
        let gap_closed = (sc.summary.cycles as f64 - sc_if.summary.cycles as f64)
            / (sc.summary.cycles as f64 - rmo.summary.cycles as f64).max(1.0);
        assert!(
            gap_closed > 0.4,
            "{}: speculation should close most of the SC-RMO gap, closed {:.0}%",
            kind.name(),
            100.0 * gap_closed
        );
    }
}

#[test]
fn speculation_reduces_consistency_waste_category() {
    let base = Experiment::new(WorkloadKind::OltpLike)
        .params(small(4, 4))
        .model(ConsistencyModel::Tso)
        .run()
        .unwrap();
    let spec = Experiment::new(WorkloadKind::OltpLike)
        .params(small(4, 4))
        .model(ConsistencyModel::Tso)
        .spec(SpecConfig::on_demand())
        .run()
        .unwrap();
    assert!(
        spec.breakdown.consistency_cycles() < base.breakdown.consistency_cycles(),
        "consistency waste must shrink: {} -> {}",
        base.breakdown.consistency_cycles(),
        spec.breakdown.consistency_cycles()
    );
}

#[test]
fn mesi_beats_msi_on_private_write_heavy_work() {
    // Barnes walks (loads) tree nodes and then updates them in place: with
    // E-grants the load-then-store pattern upgrades silently.
    let msi = Experiment::new(WorkloadKind::BarnesLike)
        .params(small(2, 3))
        .protocol(ProtocolConfig {
            grant_exclusive: false,
            ..ProtocolConfig::default()
        })
        .run()
        .unwrap();
    let mesi = Experiment::new(WorkloadKind::BarnesLike)
        .params(small(2, 3))
        .protocol(ProtocolConfig {
            grant_exclusive: true,
            ..ProtocolConfig::default()
        })
        .run()
        .unwrap();
    assert!(
        mesi.stats.get("l1.silent_e_to_m") > 0,
        "MESI must exercise silent E->M upgrades"
    );
    assert!(
        mesi.stats.get("l1.upgrades") <= msi.stats.get("l1.upgrades"),
        "MESI should not need more upgrade transactions than MSI"
    );
}

#[test]
fn waste_fractions_sum_to_one() {
    let r = Experiment::new(WorkloadKind::BarnesLike)
        .params(small(2, 2))
        .run()
        .unwrap();
    let sum: f64 = WasteCategory::all()
        .iter()
        .map(|&c| r.breakdown.fraction(c))
        .sum();
    assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
}

#[test]
fn energy_totals_are_consistent() {
    let r = Experiment::new(WorkloadKind::DssLike)
        .params(small(2, 3))
        .run()
        .unwrap();
    let e = &r.energy;
    let parts = e.l1_nj + e.l2_nj + e.dram_nj + e.noc_nj + e.core_dynamic_nj + e.static_nj;
    assert!((parts - e.total_nj()).abs() < 1e-6);
    assert!(e.dram_nj > 0.0, "dss must touch DRAM");
    assert!(e.ops_per_uj() > 0.0);
}

#[test]
fn experiments_are_deterministic_across_invocations() {
    let go = || {
        let r = Experiment::new(WorkloadKind::ApacheLike)
            .params(small(4, 3))
            .spec(SpecConfig::on_demand())
            .run()
            .unwrap();
        (
            r.summary.cycles,
            r.summary.retired_ops,
            r.stats.get("spec.rollbacks"),
        )
    };
    assert_eq!(go(), go());
}

#[test]
fn different_seeds_change_timing_but_not_correctness() {
    let cycles = |seed| {
        let r = Experiment::new(WorkloadKind::BarnesLike)
            .params(WorkloadParams {
                threads: 4,
                scale: 3,
                seed,
            })
            .run()
            .unwrap();
        assert!(r.summary.finished);
        r.summary.cycles
    };
    // Not all seeds need differ, but across several at least one must.
    let base = cycles(1);
    assert!(
        (2..6).any(|s| cycles(s) != base),
        "timing insensitive to seed"
    );
}

#[test]
fn storage_model_backs_the_one_kilobyte_claim() {
    use tenways::spec::storage;
    let cfg = MachineConfig::default();
    let blocks = (cfg.l1_bytes() / cfg.block_bytes as usize) as u64;
    let bits = storage::block_granularity(blocks);
    let bytes = bits.bytes_at_depth(u64::MAX >> 1);
    assert!(
        bytes <= 1024,
        "block-granularity state is {bytes} B (> 1 KiB)"
    );
}

#[test]
fn continuous_mode_commits_less_often_than_on_demand() {
    let run = |spec: SpecConfig| {
        Experiment::new(WorkloadKind::OceanLike)
            .params(small(4, 4))
            .model(ConsistencyModel::Sc)
            .spec(spec)
            .run()
            .unwrap()
    };
    let od = run(SpecConfig::on_demand());
    let ct = run(SpecConfig::continuous());
    assert!(od.summary.finished && ct.summary.finished);
    let od_rate = od.stats.get("spec.commits") as f64 / od.summary.cycles.max(1) as f64;
    let ct_rate = ct.stats.get("spec.commits") as f64 / ct.summary.cycles.max(1) as f64;
    assert!(
        ct_rate <= od_rate,
        "continuous must not commit more often per cycle: {ct_rate} vs {od_rate}"
    );
}

#[test]
fn cut_off_runs_report_unfinished_rather_than_lying() {
    let r = Experiment::new(WorkloadKind::DssLike)
        .params(small(2, 50))
        .cycle_limit(500)
        .run()
        .unwrap();
    assert!(!r.summary.finished);
    assert_eq!(r.summary.cycles, 500);
}

#[test]
fn raw_machine_api_exposes_memory_and_stats() {
    let cfg = MachineConfig::builder().cores(1).build().unwrap();
    let spec = MachineSpec::baseline(ConsistencyModel::Tso).with_machine(cfg);
    let programs: Vec<Box<dyn ThreadProgram>> = vec![Box::new(ScriptProgram::new(vec![
        Op::store(Addr(0x100), 5),
        Op::load(Addr(0x100)),
    ]))];
    let mut m = Machine::new(&spec, programs);
    m.poke(Addr(0x200), 99);
    let s = m.run(100_000);
    assert!(s.finished);
    assert_eq!(m.mem().read(Addr(0x100)), 5);
    assert_eq!(m.mem().read(Addr(0x200)), 99);
    assert!(m.merged_stats().get("cyc.busy") > 0);
}

#[test]
fn mesh_interconnect_runs_every_kernel() {
    let machine = MachineConfig::builder()
        .cores(4)
        .mesh(true)
        .build()
        .unwrap();
    for kind in [
        WorkloadKind::OceanLike,
        WorkloadKind::OltpLike,
        WorkloadKind::DssLike,
    ] {
        let r = Experiment::new(kind)
            .params(small(4, 2))
            .machine(machine.clone())
            .spec(SpecConfig::on_demand())
            .run()
            .unwrap();
        assert!(r.summary.finished, "{} hung on the mesh", kind.name());
    }
}

#[test]
fn mesh_is_slower_than_crossbar_on_coherence_heavy_work() {
    let xbar = Experiment::new(WorkloadKind::OltpLike)
        .params(small(8, 4))
        .run()
        .unwrap();
    let mesh = Experiment::new(WorkloadKind::OltpLike)
        .params(small(8, 4))
        .machine(MachineConfig::builder().mesh(true).build().unwrap())
        .run()
        .unwrap();
    assert!(
        mesh.summary.cycles >= xbar.summary.cycles,
        "mesh {} should not beat the crossbar {}",
        mesh.summary.cycles,
        xbar.summary.cycles
    );
}

#[test]
fn prefetcher_helps_scans_at_machine_level() {
    let pf = Experiment::new(WorkloadKind::DssLike)
        .params(small(2, 4))
        .protocol(ProtocolConfig {
            grant_exclusive: true,
            prefetch_next_line: true,
        })
        .run()
        .unwrap();
    assert!(pf.stats.get("l1.prefetches") > 0, "prefetcher never fired");
    // Next-line prefetch on a one-word-per-block scan is not guaranteed to
    // win cycles (timing races), but it must never break the run and must
    // land some useful prefetches.
    assert!(pf.summary.finished);
    assert!(pf.stats.get("l1.prefetch_useful") > 0);
}

#[test]
fn noc_queue_overlay_is_populated_under_load() {
    let r = Experiment::new(WorkloadKind::RadixLike)
        .params(small(8, 4))
        .run()
        .unwrap();
    // All-to-all scatter bursts should queue at endpoints at least sometimes.
    assert!(
        r.breakdown.noc_queue_overlay > 0,
        "radix's scatter phase should exhibit NoC queueing"
    );
}

#[test]
fn lockbench_layout_counter_is_protected() {
    use tenways::workloads::{lock_bench_programs, LockBenchParams, LockKind};
    for kind in [LockKind::Ttas, LockKind::Ticket] {
        let params = LockBenchParams {
            threads: 3,
            rounds: 15,
            kind,
            ..Default::default()
        };
        let (programs, layout) = lock_bench_programs(&params);
        let cfg = MachineConfig::builder().cores(3).build().unwrap();
        let ms = MachineSpec::baseline(ConsistencyModel::Rmo)
            .with_machine(cfg)
            .with_spec(SpecConfig::on_demand());
        let mut m = Machine::new(&ms, programs);
        let s = m.run(10_000_000);
        assert!(s.finished);
        assert_eq!(
            m.mem().read(layout.counter),
            45,
            "{kind:?} lost updates under speculation"
        );
    }
}
