//! Randomized property tests over the whole stack: arbitrary programs and
//! machine shapes must preserve the architectural invariants.
//!
//! Cases are generated with the simulator's own deterministic RNG
//! ([`DetRng`]) rather than an external property-testing framework, so
//! every CI run exercises the exact same case set — a failure names the
//! case index, which reproduces it directly.

use tenways::prelude::*;
use tenways::sim::DetRng;

/// One generated memory op for random programs.
fn gen_op(rng: &mut DetRng, addr_blocks: u64) -> Op {
    let addr = |b: u64| Addr(0x2000 + b * 64);
    match rng.below(7) {
        0 => Op::Compute(rng.range(1, 20)),
        1 => Op::load(addr(rng.below(addr_blocks))),
        2 => Op::store(addr(rng.below(addr_blocks)), rng.next_u64()),
        3 => Op::Fence(FenceKind::Full),
        4 => Op::Fence(FenceKind::Acquire),
        5 => Op::Fence(FenceKind::Release),
        _ => Op::Rmw {
            addr: addr(rng.below(addr_blocks)),
            rmw: RmwOp::FetchAdd(1),
            tag: MemTag::Data,
            consume: false,
        },
    }
}

fn gen_ops(rng: &mut DetRng, addr_blocks: u64, max_len: u64) -> Vec<Op> {
    let len = rng.below(max_len);
    (0..len).map(|_| gen_op(rng, addr_blocks)).collect()
}

fn gen_model(rng: &mut DetRng) -> ConsistencyModel {
    match rng.below(3) {
        0 => ConsistencyModel::Sc,
        1 => ConsistencyModel::Tso,
        _ => ConsistencyModel::Rmo,
    }
}

fn gen_spec(rng: &mut DetRng) -> SpecConfig {
    match rng.below(4) {
        0 => SpecConfig::disabled(),
        1 => SpecConfig::on_demand(),
        2 => SpecConfig::continuous(),
        _ => SpecConfig::per_store(rng.range(1, 16)),
    }
}

fn run_programs(
    model: ConsistencyModel,
    spec: SpecConfig,
    programs: Vec<Box<dyn ThreadProgram>>,
) -> (tenways::cpu::Machine, tenways::cpu::RunSummary) {
    let cfg = MachineConfig::builder()
        .cores(programs.len())
        .build()
        .unwrap();
    let ms = MachineSpec::baseline(model)
        .with_machine(cfg)
        .with_spec(spec);
    let mut m = tenways::cpu::Machine::new(&ms, programs);
    let s = m.run(5_000_000);
    (m, s)
}

const CASES: u64 = 24;

/// Any straight-line program mix terminates under any model and any
/// speculation mode — no deadlock, no livelock, no panic.
#[test]
fn random_scripts_always_terminate() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xA11CE).split("terminate").split_index(case);
        let ops_a = gen_ops(&mut rng, 8, 60);
        let ops_b = gen_ops(&mut rng, 8, 60);
        let model = gen_model(&mut rng);
        let spec = gen_spec(&mut rng);
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            Box::new(ScriptProgram::new(ops_a)),
            Box::new(ScriptProgram::new(ops_b)),
        ];
        let (_, s) = run_programs(model, spec, programs);
        assert!(s.finished, "case {case}: machine hung: {s:?}");
    }
}

/// Atomic increments never lose updates, regardless of model, mode, core
/// count or contention shape.
#[test]
fn fetch_add_is_exact() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xA11CE).split("fetch_add").split_index(case);
        let per_core = rng.range(1, 40);
        let cores = rng.range(2, 5) as usize;
        let model = gen_model(&mut rng);
        let spec = gen_spec(&mut rng);
        let counter = Addr(0x9000);
        let programs: Vec<Box<dyn ThreadProgram>> = (0..cores)
            .map(|_| {
                let ops: Vec<Op> = (0..per_core)
                    .map(|_| Op::Rmw {
                        addr: counter,
                        rmw: RmwOp::FetchAdd(1),
                        tag: MemTag::Data,
                        consume: false,
                    })
                    .collect();
                Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
            })
            .collect();
        let (m, s) = run_programs(model, spec, programs);
        assert!(s.finished, "case {case}: hung");
        assert_eq!(
            m.mem().read(counter),
            per_core * cores as u64,
            "case {case}: lost updates"
        );
    }
}

/// The last write to every address is one of the values some core actually
/// wrote (no value fabrication through speculation).
#[test]
fn no_fabricated_values() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xA11CE).split("fabrication").split_index(case);
        let gen_writes = |rng: &mut DetRng, lo: u64, hi: u64| -> Vec<(u64, u64)> {
            let n = rng.range(1, 30);
            (0..n).map(|_| (rng.below(4), rng.range(lo, hi))).collect()
        };
        let writes_a = gen_writes(&mut rng, 1, 1000);
        let writes_b = gen_writes(&mut rng, 1001, 2000);
        let model = gen_model(&mut rng);
        let spec = gen_spec(&mut rng);
        let addr = |b: u64| Addr(0x4000 + b * 64);
        let mk = |writes: &[(u64, u64)]| {
            let ops: Vec<Op> = writes
                .iter()
                .flat_map(|&(b, v)| [Op::store(addr(b), v), Op::Fence(FenceKind::Full)])
                .collect();
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        };
        let all: Vec<u64> = writes_a.iter().chain(&writes_b).map(|&(_, v)| v).collect();
        let (m, s) = run_programs(model, spec, vec![mk(&writes_a), mk(&writes_b)]);
        assert!(s.finished, "case {case}: hung");
        for b in 0..4u64 {
            let v = m.mem().read(addr(b));
            assert!(
                v == 0 || all.contains(&v),
                "case {case}: address block {b} holds fabricated value {v}"
            );
        }
    }
}

/// Per-core cycle accounting always sums to the core's active cycles.
#[test]
fn accounting_is_exhaustive() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xA11CE).split("accounting").split_index(case);
        let mut ops = gen_ops(&mut rng, 6, 50);
        if ops.is_empty() {
            ops.push(Op::Compute(1));
        }
        let model = gen_model(&mut rng);
        let spec = gen_spec(&mut rng);
        let programs: Vec<Box<dyn ThreadProgram>> = vec![Box::new(ScriptProgram::new(ops))];
        let (m, s) = run_programs(model, spec, programs);
        assert!(s.finished, "case {case}: hung");
        let core = m.core(CoreId(0));
        let total: u64 = core
            .accounting()
            .iter()
            .filter(|(k, _)| k.starts_with("cyc."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            total,
            core.done_at().unwrap().as_u64(),
            "case {case}: accounting leak"
        );
    }
}

/// Identical configurations replay identically (full determinism).
#[test]
fn deterministic_replay() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xA11CE).split("replay").split_index(case);
        let mut ops = gen_ops(&mut rng, 6, 40);
        if ops.is_empty() {
            ops.push(Op::Compute(1));
        }
        let model = gen_model(&mut rng);
        let spec = gen_spec(&mut rng);
        let go = || {
            let programs: Vec<Box<dyn ThreadProgram>> = vec![
                Box::new(ScriptProgram::new(ops.clone())),
                Box::new(ScriptProgram::new(ops.clone())),
            ];
            run_programs(model, spec, programs).1
        };
        assert_eq!(go(), go(), "case {case}: replay diverged");
    }
}
