//! Property-based tests over the whole stack: arbitrary programs and
//! machine shapes must preserve the architectural invariants.

use proptest::prelude::*;
use tenways::prelude::*;

/// A generated memory op for random programs.
fn arb_op(addr_blocks: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..20).prop_map(Op::Compute),
        (0..addr_blocks).prop_map(move |b| Op::load(Addr(0x2000 + b * 64))),
        (0..addr_blocks, any::<u64>())
            .prop_map(move |(b, v)| Op::store(Addr(0x2000 + b * 64), v)),
        Just(Op::Fence(FenceKind::Full)),
        Just(Op::Fence(FenceKind::Acquire)),
        Just(Op::Fence(FenceKind::Release)),
        (0..addr_blocks).prop_map(move |b| Op::Rmw {
            addr: Addr(0x2000 + b * 64),
            rmw: RmwOp::FetchAdd(1),
            tag: MemTag::Data,
            consume: false,
        }),
    ]
}

fn arb_model() -> impl Strategy<Value = ConsistencyModel> {
    prop_oneof![
        Just(ConsistencyModel::Sc),
        Just(ConsistencyModel::Tso),
        Just(ConsistencyModel::Rmo),
    ]
}

fn arb_spec() -> impl Strategy<Value = SpecConfig> {
    prop_oneof![
        Just(SpecConfig::disabled()),
        Just(SpecConfig::on_demand()),
        Just(SpecConfig::continuous()),
        (1u64..16).prop_map(SpecConfig::per_store),
    ]
}

fn run_programs(
    model: ConsistencyModel,
    spec: SpecConfig,
    programs: Vec<Box<dyn ThreadProgram>>,
) -> (tenways::cpu::Machine, tenways::cpu::RunSummary) {
    let cfg = MachineConfig::builder().cores(programs.len()).build().unwrap();
    let ms = MachineSpec::baseline(model).with_machine(cfg).with_spec(spec);
    let mut m = tenways::cpu::Machine::new(&ms, programs);
    let s = m.run(5_000_000);
    (m, s)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any straight-line program mix terminates under any model and any
    /// speculation mode — no deadlock, no livelock, no panic.
    #[test]
    fn random_scripts_always_terminate(
        ops_a in proptest::collection::vec(arb_op(8), 0..60),
        ops_b in proptest::collection::vec(arb_op(8), 0..60),
        model in arb_model(),
        spec in arb_spec(),
    ) {
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            Box::new(ScriptProgram::new(ops_a)),
            Box::new(ScriptProgram::new(ops_b)),
        ];
        let (_, s) = run_programs(model, spec, programs);
        prop_assert!(s.finished, "machine hung: {s:?}");
    }

    /// Atomic increments never lose updates, regardless of model, mode,
    /// core count or contention shape.
    #[test]
    fn fetch_add_is_exact(
        per_core in 1u64..40,
        cores in 2usize..5,
        model in arb_model(),
        spec in arb_spec(),
    ) {
        let counter = Addr(0x9000);
        let programs: Vec<Box<dyn ThreadProgram>> = (0..cores)
            .map(|_| {
                let ops: Vec<Op> = (0..per_core)
                    .map(|_| Op::Rmw {
                        addr: counter,
                        rmw: RmwOp::FetchAdd(1),
                        tag: MemTag::Data,
                        consume: false,
                    })
                    .collect();
                Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
            })
            .collect();
        let (m, s) = run_programs(model, spec, programs);
        prop_assert!(s.finished);
        prop_assert_eq!(m.mem().read(counter), per_core * cores as u64);
    }

    /// The last write to every address is one of the values some core
    /// actually wrote (no value fabrication through speculation).
    #[test]
    fn no_fabricated_values(
        writes_a in proptest::collection::vec((0u64..4, 1u64..1000), 1..30),
        writes_b in proptest::collection::vec((0u64..4, 1001u64..2000), 1..30),
        model in arb_model(),
        spec in arb_spec(),
    ) {
        let addr = |b: u64| Addr(0x4000 + b * 64);
        let mk = |writes: &[(u64, u64)]| {
            let ops: Vec<Op> = writes
                .iter()
                .flat_map(|&(b, v)| [Op::store(addr(b), v), Op::Fence(FenceKind::Full)])
                .collect();
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        };
        let all: Vec<u64> = writes_a.iter().chain(&writes_b).map(|&(_, v)| v).collect();
        let (m, s) = run_programs(model, spec, vec![mk(&writes_a), mk(&writes_b)]);
        prop_assert!(s.finished);
        for b in 0..4u64 {
            let v = m.mem().read(addr(b));
            prop_assert!(
                v == 0 || all.contains(&v),
                "address block {b} holds fabricated value {v}"
            );
        }
    }

    /// Per-core cycle accounting always sums to the core's active cycles.
    #[test]
    fn accounting_is_exhaustive(
        ops in proptest::collection::vec(arb_op(6), 1..50),
        model in arb_model(),
        spec in arb_spec(),
    ) {
        let programs: Vec<Box<dyn ThreadProgram>> =
            vec![Box::new(ScriptProgram::new(ops))];
        let (m, s) = run_programs(model, spec, programs);
        prop_assert!(s.finished);
        let core = m.core(CoreId(0));
        let total: u64 = core
            .accounting()
            .iter()
            .filter(|(k, _)| k.starts_with("cyc."))
            .map(|(_, v)| v)
            .sum();
        prop_assert_eq!(total, core.done_at().unwrap().as_u64());
    }

    /// Identical configurations replay identically (full determinism).
    #[test]
    fn deterministic_replay(
        ops in proptest::collection::vec(arb_op(6), 1..40),
        model in arb_model(),
        spec in arb_spec(),
    ) {
        let go = || {
            let programs: Vec<Box<dyn ThreadProgram>> = vec![
                Box::new(ScriptProgram::new(ops.clone())),
                Box::new(ScriptProgram::new(ops.clone())),
            ];
            run_programs(model, spec, programs).1
        };
        prop_assert_eq!(go(), go());
    }
}
