//! Memory-model litmus tests, run end to end on the simulator.
//!
//! These are the classic two-thread shapes used to characterize
//! consistency models. Outcomes are *observed values*, recorded by the
//! programs through consume loads, across a spread of timing variations
//! (compute skews) — a forbidden outcome must never appear, an allowed
//! outcome should appear for at least one timing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tenways::prelude::*;

/// Store X=1 then load Y, recording the loaded value.
#[derive(Debug, Clone)]
struct StoreThenLoad {
    skew: u64,
    store_addr: Addr,
    load_addr: Addr,
    out: Arc<AtomicU64>,
    phase: u8,
}

impl ThreadProgram for StoreThenLoad {
    fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
        match self.phase {
            0 => {
                self.phase = 1;
                Some(Op::Compute(self.skew.max(1)))
            }
            1 => {
                self.phase = 2;
                Some(Op::store(self.store_addr, 1))
            }
            2 => {
                self.phase = 3;
                Some(Op::Load {
                    addr: self.load_addr,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            3 => {
                self.out
                    .store(last.expect("loaded value"), Ordering::Relaxed);
                None
            }
            _ => None,
        }
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }
}

/// Runs the store-buffering (Dekker) litmus once; returns (r0, r1).
fn run_sb(model: ConsistencyModel, spec: SpecConfig, skew0: u64, skew1: u64) -> (u64, u64) {
    let x = Addr(0x1_0000);
    let y = Addr(0x1_0040);
    let r0 = Arc::new(AtomicU64::new(u64::MAX));
    let r1 = Arc::new(AtomicU64::new(u64::MAX));
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(StoreThenLoad {
            skew: skew0,
            store_addr: x,
            load_addr: y,
            out: r0.clone(),
            phase: 0,
        }),
        Box::new(StoreThenLoad {
            skew: skew1,
            store_addr: y,
            load_addr: x,
            out: r1.clone(),
            phase: 0,
        }),
    ];
    let cfg = MachineConfig::builder().cores(2).build().unwrap();
    let ms = MachineSpec::baseline(model)
        .with_machine(cfg)
        .with_spec(spec);
    let mut m = Machine::new(&ms, programs);
    let s = m.run(1_000_000);
    assert!(s.finished, "litmus hung under {model}");
    (r0.load(Ordering::Relaxed), r1.load(Ordering::Relaxed))
}

/// Timing variations to expose races.
fn skews() -> Vec<(u64, u64)> {
    let mut v = Vec::new();
    for a in [1u64, 3, 10, 25, 60, 140] {
        for b in [1u64, 3, 10, 25, 60, 140] {
            v.push((a, b));
        }
    }
    v
}

#[test]
fn store_buffering_is_forbidden_under_sc() {
    // SC forbids r0 == 0 && r1 == 0: each load follows its own store in the
    // global order, so at least one thread must observe the other's store.
    for (a, b) in skews() {
        let (r0, r1) = run_sb(ConsistencyModel::Sc, SpecConfig::disabled(), a, b);
        assert!(
            !(r0 == 0 && r1 == 0),
            "SC produced the forbidden SB outcome at skews ({a},{b})"
        );
    }
}

#[test]
fn store_buffering_is_observable_under_tso() {
    // TSO allows r0 == r1 == 0 (loads bypass the store buffer). With
    // symmetric timing the relaxed outcome should actually appear.
    let seen_relaxed = skews()
        .into_iter()
        .any(|(a, b)| run_sb(ConsistencyModel::Tso, SpecConfig::disabled(), a, b) == (0, 0));
    assert!(seen_relaxed, "TSO never exhibited store-buffer reordering");
}

#[test]
fn store_buffering_is_observable_under_rmo() {
    let seen_relaxed = skews()
        .into_iter()
        .any(|(a, b)| run_sb(ConsistencyModel::Rmo, SpecConfig::disabled(), a, b) == (0, 0));
    assert!(seen_relaxed, "RMO never exhibited store-buffer reordering");
}

#[test]
fn speculative_sc_still_forbids_store_buffering() {
    // THE correctness claim of fence speculation: the relaxed outcome must
    // stay invisible even though SC's enforcement is being bypassed
    // speculatively — conflicts roll the speculation back first.
    for spec in [SpecConfig::on_demand(), SpecConfig::continuous()] {
        for (a, b) in skews() {
            let (r0, r1) = run_sb(ConsistencyModel::Sc, spec, a, b);
            assert!(
                !(r0 == 0 && r1 == 0),
                "speculative SC leaked the forbidden SB outcome at skews ({a},{b}) with {spec:?}"
            );
        }
    }
}

/// Store X=1, full fence, then load Y.
#[derive(Debug, Clone)]
struct StoreFenceLoad {
    inner: StoreThenLoad,
    fenced: bool,
}

impl ThreadProgram for StoreFenceLoad {
    fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
        if self.inner.phase == 2 && !self.fenced {
            self.fenced = true;
            return Some(Op::Fence(FenceKind::Full));
        }
        self.inner.next_op(last)
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }
}

#[test]
fn full_fences_restore_sc_for_store_buffering() {
    // Dekker with fences must be safe under every model, with and without
    // speculation.
    let run = |model, spec: SpecConfig, a: u64, b: u64| {
        let x = Addr(0x1_0000);
        let y = Addr(0x1_0040);
        let r0 = Arc::new(AtomicU64::new(u64::MAX));
        let r1 = Arc::new(AtomicU64::new(u64::MAX));
        let mk = |store, load, out: &Arc<AtomicU64>, skew| -> Box<dyn ThreadProgram> {
            Box::new(StoreFenceLoad {
                inner: StoreThenLoad {
                    skew,
                    store_addr: store,
                    load_addr: load,
                    out: out.clone(),
                    phase: 0,
                },
                fenced: false,
            })
        };
        let programs = vec![mk(x, y, &r0, a), mk(y, x, &r1, b)];
        let cfg = MachineConfig::builder().cores(2).build().unwrap();
        let ms = MachineSpec::baseline(model)
            .with_machine(cfg)
            .with_spec(spec);
        let mut m = Machine::new(&ms, programs);
        assert!(m.run(1_000_000).finished);
        (r0.load(Ordering::Relaxed), r1.load(Ordering::Relaxed))
    };
    for model in ConsistencyModel::all() {
        for spec in [SpecConfig::disabled(), SpecConfig::on_demand()] {
            for (a, b) in [(1, 1), (10, 10), (60, 3), (3, 60)] {
                let (r0, r1) = run(model, spec, a, b);
                assert!(
                    !(r0 == 0 && r1 == 0),
                    "fenced Dekker leaked (0,0) under {model} {spec:?} at ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn coherence_per_location_total_order() {
    // Two writers to the same word; every model must leave one of the two
    // written values — and a reader that saw the final value stays final.
    for model in ConsistencyModel::all() {
        let a = Addr(0x2_0000);
        let w = |v: u64, skew: u64| -> Box<dyn ThreadProgram> {
            Box::new(ScriptProgram::new(vec![Op::Compute(skew), Op::store(a, v)]))
        };
        let cfg = MachineConfig::builder().cores(2).build().unwrap();
        let ms = MachineSpec::baseline(model).with_machine(cfg);
        let mut m = Machine::new(&ms, vec![w(7, 5), w(8, 5)]);
        assert!(m.run(1_000_000).finished);
        let v = m.mem().read(a);
        assert!(
            v == 7 || v == 8,
            "{model}: final value {v} was never written"
        );
    }
}

#[test]
fn message_passing_with_release_acquire_is_safe_everywhere() {
    // Writer: data=42; release; flag=1.  Reader: spin flag; acquire; read
    // data. Must read 42 under every model/spec combination and timing.
    #[derive(Debug, Clone)]
    struct Reader {
        flag: Addr,
        data: Addr,
        out: Arc<AtomicU64>,
        phase: u8,
    }
    impl ThreadProgram for Reader {
        fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Some(Op::Load {
                        addr: self.flag,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
                1 => {
                    if last == Some(1) {
                        self.phase = 2;
                        Some(Op::Fence(FenceKind::Acquire))
                    } else {
                        Some(Op::Load {
                            addr: self.flag,
                            tag: MemTag::Lock,
                            consume: true,
                        })
                    }
                }
                2 => {
                    self.phase = 3;
                    Some(Op::Load {
                        addr: self.data,
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
                3 => {
                    self.out.store(last.expect("data"), Ordering::Relaxed);
                    None
                }
                _ => None,
            }
        }
        fn snapshot(&self) -> Box<dyn ThreadProgram> {
            Box::new(self.clone())
        }
    }
    for model in ConsistencyModel::all() {
        for spec in [SpecConfig::disabled(), SpecConfig::on_demand()] {
            for skew in [1u64, 20, 100] {
                let flag = Addr(0x3_0000);
                let data = Addr(0x3_0040);
                let out = Arc::new(AtomicU64::new(u64::MAX));
                let writer: Box<dyn ThreadProgram> = Box::new(ScriptProgram::new(vec![
                    Op::Compute(skew),
                    Op::store(data, 42),
                    Op::Fence(FenceKind::Release),
                    Op::Store {
                        addr: flag,
                        value: 1,
                        tag: MemTag::Lock,
                    },
                ]));
                let reader: Box<dyn ThreadProgram> = Box::new(Reader {
                    flag,
                    data,
                    out: out.clone(),
                    phase: 0,
                });
                let cfg = MachineConfig::builder().cores(2).build().unwrap();
                let ms = MachineSpec::baseline(model)
                    .with_machine(cfg)
                    .with_spec(spec);
                let mut m = Machine::new(&ms, vec![writer, reader]);
                assert!(m.run(1_000_000).finished, "hung under {model} {spec:?}");
                assert_eq!(
                    out.load(Ordering::Relaxed),
                    42,
                    "stale data under {model} {spec:?} skew {skew}"
                );
            }
        }
    }
}
