//! The `tenways serve` subcommand: simulation-as-a-service over loopback
//! (or any address) with a content-addressed result cache.
//!
//! Server mode binds a [`std::net::TcpListener`], answers `POST /run`
//! jobs from the two-tier cache, and simulates misses on a persistent
//! worker pool (see [`tenways::bench::SimService`]). Client mode
//! (`--post`, `--stats`, `--health`) speaks the same protocol from the
//! same binary, so scripts and CI need no external HTTP client.
//!
//! Exit code 0 on success (server: clean shutdown; client: HTTP 200),
//! 1 when a client request is refused, 2 for usage or startup errors.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use tenways::bench::{
    http_call, serve_http, write_text_atomic, ServeOptions, SimService, SweepSpec,
};

fn usage() -> ! {
    eprintln!(
        "usage: tenways serve [options]                      start the server
       tenways serve --post <cfg> [--addr <a>]      submit one job
       tenways serve --batch <cfg> [--addr <a>]     submit a config list/grid
       tenways serve --job <key> [--addr <a>]       poll an async job
       tenways serve --stats [--addr <a>]           print server counters
       tenways serve --health [--addr <a>]          probe liveness

server options:
  --addr <host:port>    bind address (default 127.0.0.1:7417; port 0
                        picks an ephemeral port — pair with --port-file)
  --cache-dir <path>    result cache directory (default
                        $TENWAYS_RESULTS_DIR/cache or results/cache)
  --workers <n>         simulation worker threads (default: host
                        parallelism; 0 = cache-only, misses get HTTP 503)
  --mem-capacity <n>    in-memory LRU entries (default 128)
  --disk-budget-mb <n>  disk-tier byte budget in MiB; on overflow the
                        least-recently-accessed entries are evicted
                        (default: unbounded)
  --queue-depth <n>     admission bound: misses waiting for a worker
                        beyond this are refused with HTTP 503 +
                        Retry-After (default 256; joining an in-flight
                        key never consumes a slot)
  --sync-timeout-ms <n> a miss still simulating after this long answers
                        HTTP 202 + key instead of blocking; poll it with
                        GET /jobs/<key> (default: block until done)
  --retries <n>         extra attempts per failed simulation (default 0)
  --job-budget-ms <n>   per-job wall budget; over-budget jobs fail
  --warm <grid>         pre-populate the result cache from a sweep spec
                        (TOML or JSON) before binding the listener;
                        reports warmed/skipped counts on stderr
  --max-requests <n>    exit cleanly after n connections (for scripts/CI)
  --port-file <path>    write the actual bound address to this file once
                        listening (atomic write; for ephemeral ports)
  --verbose             log each request to stderr

client options:
  --addr <host:port>    server to contact (default 127.0.0.1:7417)
  --post <path|->       read a SimConfig (TOML, or JSON when the path
                        ends in .json or the text opens with '{{'; `-`
                        reads stdin) and POST it to /run
  --batch <path|->      read a config list ({{configs: [...]}} or a bare
                        array) or a sweep grid document and POST it to
                        /batch — duplicate keys cost one simulation
  --job <key>           GET /jobs/<key> ({{pending|running|done|failed}})
  --stats               GET /stats
  --health              GET /healthz

POST /run answers {{schema_version, key, cached, record}} where `key` is
the canonical content-address of the config and `record` the run_record.v1
document — byte-identical on a hit, freshly simulated on a miss. A full
admission queue answers 503 + Retry-After; a miss past --sync-timeout-ms
answers 202 + key for later polling."
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tenways serve: {msg}");
    std::process::exit(2);
}

/// What the invocation asked for.
enum Mode {
    Server,
    Post(String),
    Batch(String),
    Job(String),
    Stats,
    Health,
}

/// Runs the subcommand; `argv` excludes the leading `serve` token.
pub fn main(argv: &[String]) -> ! {
    let mut addr = "127.0.0.1:7417".to_string();
    let mut options = ServeOptions::default();
    let mut max_requests: Option<u64> = None;
    let mut warm: Option<PathBuf> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut verbose = false;
    let mut mode = Mode::Server;

    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let number = |i: &mut usize| -> u64 {
        let v = value(i);
        v.parse()
            .unwrap_or_else(|_| fail(format!("not a number: {v}")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" | "-a" => addr = value(&mut i),
            "--cache-dir" => options.cache_dir = PathBuf::from(value(&mut i)),
            "--workers" => options.workers = number(&mut i) as usize,
            "--mem-capacity" => options.mem_capacity = number(&mut i) as usize,
            "--disk-budget-mb" => options.disk_budget = Some(number(&mut i) * 1024 * 1024),
            "--queue-depth" => options.queue_depth = number(&mut i) as usize,
            "--sync-timeout-ms" => options.sync_timeout_ms = Some(number(&mut i)),
            "--retries" => options.retries = number(&mut i) as u32,
            "--job-budget-ms" => options.job_budget_ms = Some(number(&mut i)),
            "--warm" => warm = Some(PathBuf::from(value(&mut i))),
            "--max-requests" => max_requests = Some(number(&mut i)),
            "--port-file" => port_file = Some(PathBuf::from(value(&mut i))),
            "--verbose" => verbose = true,
            "--post" => mode = Mode::Post(value(&mut i)),
            "--batch" => mode = Mode::Batch(value(&mut i)),
            "--job" => mode = Mode::Job(value(&mut i)),
            "--stats" => mode = Mode::Stats,
            "--health" => mode = Mode::Health,
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument: {other}")),
        }
        i += 1;
    }

    match mode {
        Mode::Server => run_server(&addr, options, warm, max_requests, port_file, verbose),
        Mode::Post(source) => run_client_post(&addr, "/run", &source),
        Mode::Batch(source) => run_client_post(&addr, "/batch", &source),
        Mode::Job(key) => run_get(&addr, &format!("/jobs/{key}")),
        Mode::Stats => run_get(&addr, "/stats"),
        Mode::Health => run_get(&addr, "/healthz"),
    }
}

fn run_server(
    addr: &str,
    options: ServeOptions,
    warm: Option<PathBuf>,
    max_requests: Option<u64>,
    port_file: Option<PathBuf>,
    verbose: bool,
) -> ! {
    let workers = options.workers;
    let cache_dir = options.cache_dir.clone();
    let service = SimService::new(options).unwrap_or_else(|e| fail(e));
    // Warm before binding: clients that can connect always see the
    // cache the spec promised them.
    if let Some(spec_path) = &warm {
        let spec = SweepSpec::load(spec_path).unwrap_or_else(|e| fail(e));
        let points: Vec<_> = spec
            .points()
            .unwrap_or_else(|e| fail(e))
            .into_iter()
            .map(|p| (p.label, p.config))
            .collect();
        eprintln!(
            "[serve] warming cache from {} ({} point{})",
            spec_path.display(),
            points.len(),
            if points.len() == 1 { "" } else { "s" }
        );
        let report = service.warm(&points);
        for (label, error) in &report.failed {
            eprintln!("[serve] warm {label} failed: {error}");
        }
        eprintln!(
            "[serve] warm done: {} unique, {} warmed, {} already cached, {} failed",
            report.unique,
            report.warmed,
            report.skipped,
            report.failed.len()
        );
    }
    let listener = TcpListener::bind(addr).unwrap_or_else(|e| fail(format!("bind {addr}: {e}")));
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    if let Some(path) = &port_file {
        let mut text = bound.clone();
        text.push('\n');
        write_text_atomic(path, &text).unwrap_or_else(|e| fail(e));
    }
    eprintln!(
        "[serve] listening on {bound} ({} worker{}, cache {})",
        workers,
        if workers == 1 { "" } else { "s" },
        cache_dir.display()
    );
    serve_http(Arc::new(service), listener, max_requests, verbose).unwrap_or_else(|e| fail(e));
    eprintln!("[serve] done");
    std::process::exit(0);
}

/// POSTs one document (a config for `/run`, a config list or grid for
/// `/batch`) and prints the response. Exit 0 covers both immediate
/// answers (200) and accepted-for-later (202).
fn run_client_post(addr: &str, path: &str, source: &str) -> ! {
    let text = if source == "-" {
        std::io::read_to_string(std::io::stdin())
            .unwrap_or_else(|e| fail(format!("cannot read stdin: {e}")))
    } else {
        std::fs::read_to_string(source)
            .unwrap_or_else(|e| fail(format!("cannot read {source}: {e}")))
    };
    let trimmed = text.trim_start();
    let looks_json =
        source.ends_with(".json") || trimmed.starts_with('{') || trimmed.starts_with('[');
    let content_type = if looks_json {
        "application/json"
    } else {
        "application/toml"
    };
    let (status, doc) =
        http_call(addr, "POST", path, Some((content_type, &text))).unwrap_or_else(|e| fail(e));
    println!("{}", doc.pretty());
    std::process::exit(if status == 200 || status == 202 { 0 } else { 1 });
}

/// GETs a diagnostic endpoint and prints the response document.
fn run_get(addr: &str, path: &str) -> ! {
    let (status, doc) = http_call(addr, "GET", path, None).unwrap_or_else(|e| fail(e));
    println!("{}", doc.pretty());
    std::process::exit(if status == 200 { 0 } else { 1 });
}
