//! The `tenways litmus` subcommand: run the in-tree litmus corpus (or
//! `.litmus` files) through the exploration engine and report verdicts.
//!
//! The report is a bench-rows-style document
//! (`{schema_version, id, title, config, rows}`) with one row per
//! `(test, model)`; a row's `status` is `failed` if a forbidden state was
//! observed, the speculation-on and speculation-off state sets differ, or
//! any grid run failed. Exit code 0 when every row is `ok`, 1 when any
//! failed, 2 for usage errors.

use std::path::PathBuf;

use tenways::bench::{results_dir, BENCH_ROWS_SCHEMA_VERSION};
use tenways::cpu::ConsistencyModel;
use tenways::litmus::{corpus, explore, judge, ExploreOptions, LitmusTest};
use tenways::sim::json::{Json, ToJson};
use tenways::waste::{SchedConfig, SchedModeChoice};

fn usage() -> ! {
    eprintln!(
        "usage: tenways litmus [--corpus] [options]
       tenways litmus --file <test.litmus> [--file ...] [options]
  --corpus            run the in-tree corpus (default when no --file given)
  --file <path>       run a .litmus file (repeatable, adds to the corpus
                      when --corpus is also given)
  --list              list corpus test names and exit
  --models <list>     comma-separated subset of sc,tso,rmo (default all)
  --points <n>        grid points per (model, spec mode) cell (default 32)
  --seed <n>          grid base seed (default 7)
  --workers <n>       across-run worker threads: how many grid points run
                      concurrently (default: host parallelism, divided by
                      --sched-workers when sharding)
  --cycle-limit <n>   per-run cycle limit; a run that exceeds it fails
                      (default 1000000)
  --sched <mode>      per-run scheduler: naive | machine-gap |
                      component-wake | parallel-epoch (default
                      component-wake; verdicts are identical in all modes)
  --sched-workers <n> intra-run shard threads for --sched parallel-epoch
                      (default: host parallelism). When sharding (n > 1),
                      an explicit --workers x --sched-workers may not
                      exceed the host's hardware threads
  --json <path|->     also write the report JSON to a path (- for stdout)
  --out <dir>         results directory for litmus.json (default
                      $TENWAYS_RESULTS_DIR or results/)
  --quiet             suppress per-test progress on stderr

Each test runs across the same deterministic grid for every consistency
model x speculation mode (disabled, on-demand, continuous). Verdicts fail
on any observed `forbidden` state and on any difference between the
speculation-on and speculation-off observable-state sets; failures carry
a replayable {{test, model, spec, seed, point}} repro."
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tenways litmus: {msg}");
    std::process::exit(2);
}

/// Runs the subcommand; `argv` excludes the leading `litmus` token.
pub fn main(argv: &[String]) -> ! {
    let mut use_corpus = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut models: Vec<ConsistencyModel> = ConsistencyModel::all().to_vec();
    let mut opts = ExploreOptions::default();
    let mut sched = SchedConfig::default();
    let mut json: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut quiet = false;

    let mut i = 0;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        argv.get(*i).unwrap_or_else(|| usage())
    };
    let number = |i: &mut usize| -> u64 {
        let v = value(i);
        v.parse()
            .unwrap_or_else(|_| fail(format!("`{v}` is not a number")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--corpus" => use_corpus = true,
            "--file" | "-f" => files.push(PathBuf::from(value(&mut i))),
            "--list" => {
                for test in corpus() {
                    println!("{}", test.name);
                }
                std::process::exit(0);
            }
            "--models" | "-m" => {
                let list = value(&mut i);
                models = list
                    .split(',')
                    .map(|m| {
                        ConsistencyModel::from_label(m.trim())
                            .unwrap_or_else(|| fail(format!("unknown model `{m}`")))
                    })
                    .collect();
                models.dedup();
                if models.is_empty() {
                    fail("--models needs at least one model");
                }
            }
            "--points" => opts.points = number(&mut i).max(1) as usize,
            "--seed" => opts.seed = number(&mut i),
            "--workers" => opts.workers = Some(number(&mut i).max(1) as usize),
            "--cycle-limit" => opts.cycle_limit = number(&mut i).max(1),
            "--sched" => {
                let v = value(&mut i);
                sched.mode = SchedModeChoice::from_label(v)
                    .unwrap_or_else(|| fail(format!("unknown sched mode `{v}`")));
            }
            "--sched-workers" => sched.workers = Some(number(&mut i) as usize),
            "--json" | "-j" => json = Some(value(&mut i).clone()),
            "--out" => out = Some(PathBuf::from(value(&mut i))),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument: {other}")),
        }
        i += 1;
    }

    // `--workers` fans grid points out across threads; `--sched-workers`
    // shards each individual run. Both explicit: reject oversubscription.
    // `--workers` left automatic: divide the host budget by the shard
    // width so the combination fits.
    opts.sched = sched.resolve().unwrap_or_else(|e| fail(e));
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    match opts.workers {
        Some(across) => sched
            .check_host_budget(across, host)
            .unwrap_or_else(|e| fail(e)),
        None if sched.intra_workers() > 1 => {
            opts.workers = Some((host / sched.intra_workers()).max(1));
        }
        None => {}
    }

    let mut tests: Vec<LitmusTest> = Vec::new();
    if use_corpus || files.is_empty() {
        tests.extend(corpus());
    }
    for path in &files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
        let test =
            LitmusTest::parse(&text).unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
        tests.push(test);
    }

    let mut rows: Vec<Json> = Vec::new();
    let mut failed = 0usize;
    let mut total_runs = 0usize;
    for test in &tests {
        let ex = explore(test, &models, &opts);
        total_runs += ex.runs;
        let verdicts = judge(test, &ex);
        if !quiet {
            let cells: Vec<String> = verdicts
                .iter()
                .map(|v| {
                    format!(
                        "{} {}",
                        v.model.label(),
                        if v.passed() { "ok" } else { "FAILED" }
                    )
                })
                .collect();
            let allowed_hits = verdicts
                .iter()
                .flat_map(|v| &v.allowed)
                .filter(|a| a.hit)
                .count();
            let allowed_total: usize = verdicts.iter().map(|v| v.allowed.len()).sum();
            eprintln!(
                "[litmus] {:<12} {} (allowed sampled {allowed_hits}/{allowed_total})",
                test.name,
                cells.join(", ")
            );
        }
        for verdict in verdicts {
            if !verdict.passed() {
                failed += 1;
                for violation in &verdict.forbidden_violations {
                    eprintln!(
                        "[litmus] {}/{}: FORBIDDEN state `{}` observed (predicate `{}`), repro {}",
                        verdict.test,
                        verdict.model.label(),
                        violation.state,
                        violation.predicate,
                        violation.repro.to_json()
                    );
                }
                for divergence in &verdict.spec_divergences {
                    eprintln!(
                        "[litmus] {}/{}: speculation {} state `{}`, repro {}",
                        verdict.test,
                        verdict.model.label(),
                        if divergence.leaked {
                            "LEAKED"
                        } else {
                            "SUPPRESSED"
                        },
                        divergence.state,
                        divergence.repro.to_json()
                    );
                }
                for (spec, point, err) in &verdict.run_failures {
                    eprintln!(
                        "[litmus] {}/{}: run failed at point {point} (spec {}): {err}",
                        verdict.test,
                        verdict.model.label(),
                        spec.label()
                    );
                }
            }
            rows.push(verdict.to_json());
        }
    }

    let doc = Json::obj([
        ("schema_version", Json::U64(BENCH_ROWS_SCHEMA_VERSION)),
        ("id", Json::from("litmus")),
        (
            "title",
            Json::from(
                "Weak-memory litmus conformance: forbidden states and speculation transparency",
            ),
        ),
        (
            "config",
            Json::obj([
                ("points", Json::from(opts.points)),
                ("seed", Json::from(opts.seed)),
                ("cycle_limit", Json::from(opts.cycle_limit)),
                ("models", Json::arr(models.iter().map(|m| m.to_json()))),
                ("tests", Json::from(tests.len())),
                ("runs", Json::from(total_runs)),
            ]),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    let mut text = doc.pretty();
    text.push('\n');

    let dir = out.unwrap_or_else(results_dir);
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", dir.display())));
    let path = dir.join("litmus.json");
    tenways::bench::write_text_atomic(&path, &text).unwrap_or_else(|e| fail(e));

    if let Some(dest) = &json {
        if dest == "-" {
            print!("{text}");
        } else {
            tenways::bench::write_text_atomic(std::path::Path::new(dest), &text)
                .unwrap_or_else(|e| fail(e));
        }
    }

    let total = tests.len() * models.len();
    eprintln!(
        "[litmus] {} test(s) x {} model(s): {} ok, {failed} failed ({total_runs} runs); wrote {}",
        tests.len(),
        models.len(),
        total - failed,
        path.display()
    );
    std::process::exit(if failed == 0 { 0 } else { 1 });
}
