//! # tenways
//!
//! A deterministic cycle-level multicore simulator that quantifies the
//! *ten ways to waste a parallel computer* — cycles and Joules lost to
//! consistency enforcement, communication, synchronization and data
//! movement — and implements the mechanism that eliminates the
//! consistency-enforcement share: **performance-transparent memory
//! ordering via post-retirement fence speculation** with block-granularity
//! speculative state (InvisiFence-style).
//!
//! The workspace is layered; this facade re-exports each layer:
//!
//! * [`sim`] — deterministic simulation kernel (time, ids, stats, RNG).
//! * [`noc`] — latency/bandwidth-modeled interconnect.
//! * [`mem`] — cache arrays, MSHRs, banked DRAM.
//! * [`coherence`] — blocking full-map directory MESI/MSI with speculation
//!   hooks.
//! * [`spec`] — the fence-speculation engine and storage models (the
//!   paper's primary contribution; crate `tenways-core`).
//! * [`cpu`] — the core pipeline, consistency models, and the assembled
//!   [`Machine`](cpu::Machine).
//! * [`workloads`] — the eight-kernel synthetic suite plus the contended
//!   microbenchmark.
//! * [`waste`] — the taxonomy, energy accounting, and the
//!   [`Experiment`](waste::Experiment) runner.
//! * [`bench`] — the fail-soft parallel [`SweepRunner`](bench::SweepRunner),
//!   the grid-sweep layer behind `tenways sweep`, and the
//!   content-addressed result cache + [`SimService`](bench::SimService)
//!   behind `tenways serve`.
//! * [`litmus`] — the weak-memory conformance harness behind
//!   `tenways litmus`: litmus-test parsing, interleaving exploration, and
//!   forbidden-state / speculation-transparency verdicts.
//!
//! # Quickstart
//!
//! ```rust
//! use tenways::prelude::*;
//!
//! // How much does naive SC cost on an OLTP-like workload — and how much
//! // does fence speculation buy back?
//! let params = WorkloadParams { threads: 2, scale: 2, seed: 7 };
//! let base = Experiment::new(WorkloadKind::OltpLike)
//!     .params(params)
//!     .model(ConsistencyModel::Sc)
//!     .run()
//!     .unwrap();
//! let spec = Experiment::new(WorkloadKind::OltpLike)
//!     .params(params)
//!     .model(ConsistencyModel::Sc)
//!     .spec(SpecConfig::on_demand())
//!     .run()
//!     .unwrap();
//! assert!(base.summary.finished && spec.summary.finished);
//! assert!(spec.summary.cycles <= base.summary.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tenways_bench as bench;
pub use tenways_coherence as coherence;
pub use tenways_core as spec;
pub use tenways_cpu as cpu;
pub use tenways_litmus as litmus;
pub use tenways_mem as mem;
pub use tenways_noc as noc;
pub use tenways_sim as sim;
pub use tenways_waste as waste;
pub use tenways_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use tenways_coherence::ProtocolConfig;
    pub use tenways_core::{SpecConfig, SpecMode};
    pub use tenways_cpu::{
        ConsistencyModel, FenceKind, Machine, MachineSpec, MemTag, Op, RmwOp, ScriptProgram,
        ThreadProgram,
    };
    pub use tenways_sim::{Addr, AtomicsConfig, CoreId, Cycle, MachineConfig};
    pub use tenways_waste::{
        ConfigLoadError, EnergyModel, Experiment, ExperimentError, RunRecord, SchedConfig,
        SchedConfigError, SchedMode, SchedModeChoice, SimConfig, WasteBreakdown, WasteCategory,
        RUN_RECORD_SCHEMA_VERSION,
    };
    pub use tenways_workloads::{ContendedParams, WorkloadKind, WorkloadParams};
}
