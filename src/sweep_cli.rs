//! The `tenways sweep` subcommand: expand a grid file into many
//! [`SimConfig`](tenways::waste::SimConfig) points, run them fail-soft on
//! the [`SweepRunner`](tenways::bench::SweepRunner), and write a
//! `bench_rows.v1`-compatible document with per-row status.
//!
//! Exit code 0 when every row is `ok`, 1 when any row failed or was
//! skipped (completed rows are still on disk), 2 for usage or
//! configuration errors.

use std::path::PathBuf;

use tenways::bench::{run_sweep, run_sweep_server, SweepOptions, SweepParams, SweepSpec};

fn usage() -> ! {
    eprintln!(
        "usage: tenways sweep --config <grid.toml> [options]
  --config <path>        grid file: base SimConfig keys, optional [sweep]
                         id/title, and a [grid] table of axis arrays
                         (dotted keys like \"machine.dram_latency\" reach
                         into sections); .json parses as JSON
  --id <name>            sweep id (default: [sweep] id, else the file stem)
  --out <dir>            output directory (default $TENWAYS_RESULTS_DIR
                         or results/)
  --workers <n>          across-run worker threads: how many grid points
                         run concurrently (default: host parallelism,
                         divided by the widest point's sched.workers).
                         Intra-run sharding is configured separately via
                         [sched] in the grid file; when a point shards
                         (sched.workers > 1), an explicit --workers that
                         oversubscribes the host (workers x sched.workers
                         > hardware threads) is rejected
  --retries <n>          extra attempts per failed job (default 0)
  --backoff-ms <n>       base retry backoff, doubled per attempt (default 50)
  --job-timeout-ms <n>   per-job wall budget; over-budget rows fail
  --fail-fast            skip the rest of the grid after the first failure
  --max-jobs <n>         start at most n fresh jobs this invocation
  --checkpoint-every <n> checkpoint after every n completed rows
                         (default 1; 0 disables checkpointing)
  --fresh                ignore an existing checkpoint and start over
  --cache [<dir>]        consult (and fill) the content-addressed result
                         cache before simulating: points already cached
                         become rows without running (marked
                         \"cache\": \"hit\"). The optional directory
                         defaults to $TENWAYS_RESULTS_DIR/cache or
                         results/cache — the same store `tenways serve`
                         uses, so a warm server warms local sweeps too
  --server <host:port>   client mode: POST the whole grid to a running
                         `tenways serve` instance's /batch endpoint (the
                         server canonicalizes, deduplicates, and answers
                         warm keys from its cache), poll queued keys via
                         GET /jobs/<key>, and write the same document
                         with rows marked \"served\": cached|computed;
                         a `tenways route` router address works here
                         unchanged (same protocol, sharded backends),
                         and rejected keys retry with jittered backoff
  --quiet                suppress per-row progress on stderr

Completed rows are checkpointed to <out>/<id>.partial.json; rerunning the
same sweep resumes from the checkpoint. The final document is
<out>/<id>.json with per-row status ok / failed / skipped."
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tenways sweep: {msg}");
    std::process::exit(2);
}

/// Runs the subcommand; `argv` excludes the leading `sweep` token.
pub fn main(argv: &[String]) -> ! {
    let mut config: Option<PathBuf> = None;
    let mut id: Option<String> = None;
    let mut server: Option<String> = None;
    let mut params = SweepParams::default();
    let mut options = SweepOptions::default();
    params.verbose = true;

    let mut i = 0;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        argv.get(*i).unwrap_or_else(|| usage())
    };
    let number = |i: &mut usize| -> u64 {
        let v = value(i);
        v.parse()
            .unwrap_or_else(|_| fail(format!("`{v}` is not a number")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--config" | "-c" => config = Some(PathBuf::from(value(&mut i))),
            "--id" => id = Some(value(&mut i).clone()),
            "--out" => params.out_dir = PathBuf::from(value(&mut i)),
            "--workers" => options.workers = Some(number(&mut i).max(1) as usize),
            "--retries" => options.retries = number(&mut i) as u32,
            "--backoff-ms" => options.backoff_ms = number(&mut i),
            "--job-timeout-ms" => options.job_budget_ms = Some(number(&mut i)),
            "--fail-fast" => options.fail_fast = true,
            "--max-jobs" => options.max_jobs = Some(number(&mut i) as usize),
            "--checkpoint-every" => params.checkpoint_every = number(&mut i) as usize,
            "--fresh" => params.resume = false,
            "--cache" => {
                // Optional directory operand: consume it only when the
                // next token is not another flag.
                let dir = match argv.get(i + 1) {
                    Some(next) if !next.starts_with('-') => {
                        i += 1;
                        PathBuf::from(next)
                    }
                    _ => tenways::bench::results_dir().join("cache"),
                };
                params.cache_dir = Some(dir);
            }
            "--server" => server = Some(value(&mut i).clone()),
            "--quiet" | "-q" => params.verbose = false,
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    params.options = options;

    let Some(config) = config else {
        eprintln!("tenways sweep: --config is required\n");
        usage()
    };
    let mut spec = SweepSpec::load(&config).unwrap_or_else(|e| fail(e));
    if let Some(id) = id {
        spec.id = id;
    }

    let report = match &server {
        Some(addr) => run_sweep_server(&spec, addr, &params).unwrap_or_else(|e| fail(e)),
        None => run_sweep(&spec, &params).unwrap_or_else(|e| fail(e)),
    };
    let total = report.ok + report.failed + report.skipped;
    println!(
        "[sweep {}] {total} point(s): {} ok ({} reused, {} cached), {} failed, {} skipped",
        spec.id, report.ok, report.reused, report.cached, report.failed, report.skipped
    );
    println!("[sweep {}] wrote {}", spec.id, report.path.display());
    std::process::exit(if report.all_ok() { 0 } else { 1 });
}
