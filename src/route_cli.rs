//! The `tenways route` subcommand: a shard-by-key router fronting N
//! `tenways serve` backends (see [`tenways::bench::Router`]).
//!
//! The router speaks the same HTTP protocol as a single serve node —
//! `POST /run`, `POST /batch`, `GET /jobs/<key>`, `GET /healthz` — so
//! every serve client (including `tenways sweep --server`) points at it
//! unchanged. Requests shard by the canonical cache key via rendezvous
//! hashing; `GET /stats` answers the aggregated `serve_cluster_stats.v1`
//! document instead of a single node's counters.
//!
//! Exit code 0 on clean shutdown, 2 for usage or startup errors.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use tenways::bench::{route_http, write_text_atomic, Router, RouterOptions};

fn usage() -> ! {
    eprintln!(
        "usage: tenways route --backend <host:port> [--backend <host:port> ...] [options]

Fronts N `tenways serve` backends behind one address, sharding every
request by its canonical cache key (rendezvous hashing): the same config
always lands on the same live backend, so duplicate work is deduplicated
cluster-wide. Serve clients work unchanged, including
`tenways sweep --server <router-addr>`.

options:
  --backend <host:port>     a serve backend (repeat once per backend;
                            at least one required)
  --addr <host:port>        bind address (default 127.0.0.1:7418; port 0
                            picks an ephemeral port — pair with --port-file)
  --health-interval-ms <n>  how often to probe each backend's /healthz
                            (default 500)
  --retries <n>             extra forward attempts on 503/connect failure,
                            re-resolving the owner each time (default 3)
  --backoff-ms <n>          base backoff between attempts, doubled each
                            retry (default 50)
  --max-requests <n>        exit cleanly after n connections (for
                            scripts/CI)
  --port-file <path>        write the actual bound address to this file
                            once listening (atomic write)
  --verbose                 log each routed request to stderr

endpoints: POST /run, POST /batch (split per owner, merged), GET
/jobs/<key> (owner shard), GET /stats (serve_cluster_stats.v1 aggregate),
GET /healthz (backend census)."
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tenways route: {msg}");
    std::process::exit(2);
}

/// Runs the subcommand; `argv` excludes the leading `route` token.
pub fn main(argv: &[String]) -> ! {
    let mut addr = "127.0.0.1:7418".to_string();
    let mut options = RouterOptions::default();
    let mut max_requests: Option<u64> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut verbose = false;

    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let number = |i: &mut usize| -> u64 {
        let v = value(i);
        v.parse()
            .unwrap_or_else(|_| fail(format!("not a number: {v}")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--backend" | "-b" => options.backends.push(value(&mut i)),
            "--addr" | "-a" => addr = value(&mut i),
            "--health-interval-ms" => {
                options.health_interval = Duration::from_millis(number(&mut i));
            }
            "--retries" => options.retries = number(&mut i) as u32,
            "--backoff-ms" => options.backoff = Duration::from_millis(number(&mut i)),
            "--max-requests" => max_requests = Some(number(&mut i)),
            "--port-file" => port_file = Some(PathBuf::from(value(&mut i))),
            "--verbose" => verbose = true,
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if options.backends.is_empty() {
        usage();
    }

    let backends = options.backends.clone();
    let router = Arc::new(Router::new(options).unwrap_or_else(|e| fail(e)));
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| fail(format!("bind {addr}: {e}")));
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.clone());
    if let Some(path) = &port_file {
        let mut text = bound.clone();
        text.push('\n');
        write_text_atomic(path, &text).unwrap_or_else(|e| fail(e));
    }
    eprintln!(
        "[route] listening on {bound}, sharding over {} backend{}: {}",
        backends.len(),
        if backends.len() == 1 { "" } else { "s" },
        backends.join(", ")
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    route_http(router, listener, max_requests, verbose, shutdown).unwrap_or_else(|e| fail(e));
    eprintln!("[route] done");
    std::process::exit(0);
}
