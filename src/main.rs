//! The `tenways` command-line driver: run one experiment from the shell,
//! or a whole grid of them with the `sweep` subcommand.
//!
//! ```text
//! tenways --workload oltp --model sc --spec on-demand --threads 8 --scale 8
//! tenways --config sweep.toml --json results/run.json --trace trace.json
//! tenways sweep --config grid.toml
//! tenways litmus --corpus
//! tenways serve --addr 127.0.0.1:7417
//! tenways --list
//! ```
//!
//! Settings layer lowest-to-highest: built-in defaults, the `--config`
//! file (TOML or JSON [`SimConfig`]), then individual flags.

use std::io::Write as _;
use std::path::PathBuf;

use tenways::prelude::*;
use tenways::sim::json::ToJson;
use tenways::sim::trace::chrome_trace;
use tenways::waste::report;

mod litmus_cli;
mod route_cli;
mod serve_cli;
mod sweep_cli;

fn usage() -> ! {
    eprintln!(
        "usage: tenways [options]                            run one experiment
       tenways sweep --config <grid.toml> [options]  run a config grid
                                                     (see tenways sweep --help)
       tenways litmus [--corpus] [options]           weak-memory conformance
                                                     (see tenways litmus --help)
       tenways serve [options]                       simulation service with a
                                                     content-addressed result
                                                     cache (see tenways serve
                                                     --help)
       tenways route --backend <a> [...]             shard-by-key router over N
                                                     serve backends (see
                                                     tenways route --help)
  --config <path>     load a SimConfig file first (.json is JSON, else TOML)
  --workload <name>   one of: {} | contended (default oltp)
  --model <m>         sc | tso | rmo (default tso)
  --spec <s>          off | on-demand | continuous | per-store:<N> (default off)
  --threads <n>       simulated cores (default 8)
  --scale <n>         per-thread work units (default 8)
  --seed <n>          run seed (default 7)
  --conflict <p>      contended workload conflict probability (default 0.05)
  --mesh              use a 2-D mesh interconnect instead of the crossbar
  --msi               use MSI instead of MESI coherence
  --prefetch          enable the next-line L1 prefetcher
  --atomics <preset>  RMW/fence latency model: off | schweizer (default
                      off; schweizer = Haswell-calibrated near/far costs)
  --sched <mode>      run-loop scheduler: naive | machine-gap |
                      component-wake | parallel-epoch (default
                      component-wake; results are identical in all modes)
  --sched-workers <n> intra-run shard threads for --sched parallel-epoch
                      (default: host parallelism); distinct from the
                      sweep/litmus --workers across-run parallelism
  --json <path|->     write the run record as JSON (- for stdout)
  --trace <path>      record an event trace (Chrome trace_event JSON)
  --breakdown         print the ten-ways cycle breakdown
  --energy            print the energy report
  --stats             dump all raw counters
  --list              list workloads and exit",
        WorkloadKind::all().map(|k| k.name()).join(" | ")
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    usage()
}

struct Args {
    cfg: SimConfig,
    json: Option<String>,
    trace: Option<PathBuf>,
    breakdown: bool,
    energy: bool,
    stats: bool,
}

/// Capacity of the trace ring buffer (events); the newest events win when
/// a run overflows it.
const TRACE_CAPACITY: usize = 1 << 20;

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();

    // Subcommand dispatch: `tenways sweep ...` and `tenways litmus ...`
    // have their own flag sets.
    match argv.first().map(String::as_str) {
        Some("sweep") => sweep_cli::main(&argv[1..]),
        Some("litmus") => litmus_cli::main(&argv[1..]),
        Some("serve") => serve_cli::main(&argv[1..]),
        Some("route") => route_cli::main(&argv[1..]),
        _ => {}
    }

    // Pass 1: the config file establishes the base layer.
    let mut cfg = SimConfig::default();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--config" || argv[i] == "-c" {
            let path = argv.get(i + 1).unwrap_or_else(|| usage());
            cfg = SimConfig::load(std::path::Path::new(path)).unwrap_or_else(|e| fail(e));
        }
        i += 1;
    }

    // Pass 2: flags override the loaded config field-by-field.
    let mut args = Args {
        cfg,
        json: None,
        trace: None,
        breakdown: false,
        energy: false,
        stats: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--config" | "-c" => {
                i += 1; // consumed in pass 1
            }
            "--workload" | "-w" => args.cfg.workload = value(&mut i),
            "--model" | "-m" => {
                let v = value(&mut i);
                args.cfg.model = ConsistencyModel::from_label(&v)
                    .unwrap_or_else(|| fail(format!("unknown model: {v}")));
            }
            "--spec" | "-s" => {
                args.cfg.spec = SpecConfig::from_flag(&value(&mut i)).unwrap_or_else(|e| fail(e));
            }
            "--threads" | "-t" => {
                args.cfg.threads = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--scale" => args.cfg.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.cfg.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--conflict" => args.cfg.conflict = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--sched" => {
                let v = value(&mut i);
                args.cfg.sched.mode = SchedModeChoice::from_label(&v)
                    .unwrap_or_else(|| fail(format!("unknown sched mode: {v}")));
            }
            "--sched-workers" => {
                args.cfg.sched.workers = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--atomics" => {
                let v = value(&mut i);
                args.cfg.atomics = match v.as_str() {
                    "off" => AtomicsConfig::off(),
                    "schweizer" => AtomicsConfig::schweizer(),
                    other => fail(format!("unknown atomics preset: {other} (off | schweizer)")),
                };
            }
            "--mesh" => args.cfg.machine.noc_mesh = true,
            "--msi" => args.cfg.protocol.grant_exclusive = false,
            "--prefetch" => args.cfg.protocol.prefetch_next_line = true,
            "--json" | "-j" => args.json = Some(value(&mut i)),
            "--trace" => args.trace = Some(PathBuf::from(value(&mut i))),
            "--breakdown" => args.breakdown = true,
            "--energy" => args.energy = true,
            "--stats" => args.stats = true,
            "--list" => {
                for k in WorkloadKind::all() {
                    println!("{}", k.name());
                }
                println!("contended");
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let experiment = Experiment::from_config(&args.cfg).unwrap_or_else(|e| fail(e));

    let (record, events) = if args.trace.is_some() {
        let (record, events) = experiment.run_traced(TRACE_CAPACITY).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        (record, Some(events))
    } else {
        let record = experiment.run().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        (record, None)
    };

    if let (Some(path), Some(events)) = (&args.trace, &events) {
        let mut text = chrome_trace(events).to_string();
        text.push('\n');
        tenways::bench::write_text_atomic(path, &text).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        eprintln!("[trace] wrote {} ({} events)", path.display(), events.len());
    }

    if let Some(dest) = &args.json {
        let mut text = record.to_json().pretty();
        text.push('\n');
        if dest == "-" {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        } else {
            tenways::bench::write_text_atomic(std::path::Path::new(dest), &text).unwrap_or_else(
                |e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                },
            );
            eprintln!("[json] wrote {dest}");
        }
    }

    let s = &record.summary;
    // With `--json -`, stdout is the machine channel: emit only the JSON
    // document so the output pipes straight into jq & co.
    if args.json.as_deref() == Some("-") {
        if !s.finished {
            std::process::exit(1);
        }
        return;
    }
    println!(
        "{} | {} | spec {:?}",
        record.label,
        record.model.label(),
        record.spec.mode
    );
    println!(
        "cycles {}  finished {}  retired {}  throughput {:.3} ops/cycle",
        s.cycles,
        s.finished,
        s.retired_ops,
        s.throughput()
    );
    println!(
        "useful {:.1}%  consistency-waste {} cy  rollbacks {}  ops/uJ {:.1}",
        100.0 * record.breakdown.useful_fraction(),
        record.breakdown.consistency_cycles(),
        record.stats.get("spec.rollbacks"),
        record.energy.ops_per_uj()
    );
    if args.breakdown {
        println!();
        print!("{}", report::breakdown_table(std::slice::from_ref(&record)));
    }
    if args.energy {
        println!();
        print!("{}", report::energy_table(std::slice::from_ref(&record)));
    }
    if args.stats {
        println!("\n{}", record.stats);
    }
    if !s.finished {
        std::process::exit(1);
    }
}
