//! The `tenways` command-line driver: run one experiment from the shell.
//!
//! ```text
//! tenways --workload oltp --model sc --spec on-demand --threads 8 --scale 8
//! tenways --list
//! ```

use tenways::prelude::*;
use tenways::waste::report;

fn usage() -> ! {
    eprintln!(
        "usage: tenways [options]
  --workload <name>   one of: {} | contended (default oltp)
  --model <m>         sc | tso | rmo (default tso)
  --spec <s>          off | on-demand | continuous | per-store:<N> (default off)
  --threads <n>       simulated cores (default 8)
  --scale <n>         per-thread work units (default 8)
  --seed <n>          run seed (default 7)
  --conflict <p>      contended workload conflict probability (default 0.05)
  --mesh              use a 2-D mesh interconnect instead of the crossbar
  --msi               use MSI instead of MESI coherence
  --prefetch          enable the next-line L1 prefetcher
  --breakdown         print the ten-ways cycle breakdown
  --energy            print the energy report
  --stats             dump all raw counters
  --list              list workloads and exit",
        WorkloadKind::all().map(|k| k.name()).join(" | ")
    );
    std::process::exit(2);
}

struct Args {
    workload: String,
    model: ConsistencyModel,
    spec: SpecConfig,
    threads: usize,
    scale: u64,
    seed: u64,
    conflict: f64,
    mesh: bool,
    msi: bool,
    prefetch: bool,
    breakdown: bool,
    energy: bool,
    stats: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "oltp".into(),
        model: ConsistencyModel::Tso,
        spec: SpecConfig::disabled(),
        threads: 8,
        scale: 8,
        seed: 7,
        conflict: 0.05,
        mesh: false,
        msi: false,
        prefetch: false,
        breakdown: false,
        energy: false,
        stats: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--workload" | "-w" => args.workload = value(&mut i),
            "--model" | "-m" => {
                args.model = match value(&mut i).to_lowercase().as_str() {
                    "sc" => ConsistencyModel::Sc,
                    "tso" => ConsistencyModel::Tso,
                    "rmo" => ConsistencyModel::Rmo,
                    other => {
                        eprintln!("unknown model: {other}");
                        usage()
                    }
                }
            }
            "--spec" | "-s" => {
                let v = value(&mut i).to_lowercase();
                args.spec = match v.as_str() {
                    "off" | "disabled" => SpecConfig::disabled(),
                    "on-demand" | "ondemand" => SpecConfig::on_demand(),
                    "continuous" => SpecConfig::continuous(),
                    other => match other.strip_prefix("per-store:").and_then(|n| n.parse().ok()) {
                        Some(n) => SpecConfig::per_store(n),
                        None => {
                            eprintln!("unknown spec mode: {other}");
                            usage()
                        }
                    },
                }
            }
            "--threads" | "-t" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scale" => args.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--conflict" => args.conflict = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mesh" => args.mesh = true,
            "--msi" => args.msi = true,
            "--prefetch" => args.prefetch = true,
            "--breakdown" => args.breakdown = true,
            "--energy" => args.energy = true,
            "--stats" => args.stats = true,
            "--list" => {
                for k in WorkloadKind::all() {
                    println!("{}", k.name());
                }
                println!("contended");
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let machine = MachineConfig::builder()
        .cores(args.threads)
        .mesh(args.mesh)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("invalid machine: {e}");
            std::process::exit(2);
        });
    let protocol = ProtocolConfig { grant_exclusive: !args.msi, prefetch_next_line: args.prefetch };
    let params = WorkloadParams { threads: args.threads, scale: args.scale, seed: args.seed };

    let experiment = if args.workload == "contended" {
        Experiment::contended(ContendedParams {
            threads: args.threads,
            ops_per_thread: 200 * args.scale,
            conflict_p: args.conflict,
            hot_blocks: 4,
            fence_period: 8,
            seed: args.seed,
        })
    } else {
        match WorkloadKind::all().into_iter().find(|k| k.name() == args.workload) {
            Some(kind) => Experiment::new(kind).params(params),
            None => {
                eprintln!("unknown workload: {}", args.workload);
                usage()
            }
        }
    };

    let record = experiment
        .machine(machine)
        .model(args.model)
        .spec(args.spec)
        .protocol(protocol)
        .run();

    let s = &record.summary;
    println!(
        "{} | {} | spec {:?}",
        record.label,
        record.model.label(),
        record.spec.mode
    );
    println!(
        "cycles {}  finished {}  retired {}  throughput {:.3} ops/cycle",
        s.cycles,
        s.finished,
        s.retired_ops,
        s.throughput()
    );
    println!(
        "useful {:.1}%  consistency-waste {} cy  rollbacks {}  ops/uJ {:.1}",
        100.0 * record.breakdown.useful_fraction(),
        record.breakdown.consistency_cycles(),
        record.stats.get("spec.rollbacks"),
        record.energy.ops_per_uj()
    );
    if args.breakdown {
        println!();
        print!("{}", report::breakdown_table(std::slice::from_ref(&record)));
    }
    if args.energy {
        println!();
        print!("{}", report::energy_table(std::slice::from_ref(&record)));
    }
    if args.stats {
        println!("\n{}", record.stats);
    }
    if !s.finished {
        std::process::exit(1);
    }
}
